(* Tests for lib/net: prefixes, ASNs, communities, AS-paths, path regex,
   attributes. *)

open Net

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- Prefix ---------------- *)

let test_prefix_v4_roundtrip () =
  List.iter
    (fun s -> check_string s s (Prefix.to_string (Prefix.of_string_exn s)))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "192.168.1.0/24"; "255.255.255.255/32";
      "172.16.0.0/12" ]

let test_prefix_v6_roundtrip () =
  List.iter
    (fun s -> check_string s s (Prefix.to_string (Prefix.of_string_exn s)))
    [ "::/0"; "2001:db8::/32"; "fe80::/10"; "2001:db8:0:1::/64" ]

let test_prefix_canonical_host_bits () =
  check_bool "host bits cleared" true
    (Prefix.equal (Prefix.v4 10 1 2 3 8) (Prefix.v4 10 0 0 0 8));
  check_string "prints cleared" "10.0.0.0/8"
    (Prefix.to_string (Prefix.v4 10 99 5 1 8))

let test_prefix_families_distinct () =
  check_bool "v4 default <> v6 default" false
    (Prefix.equal Prefix.default_v4 Prefix.default_v6);
  check_bool "no cross-family contains" false
    (Prefix.contains Prefix.default_v4 (Prefix.of_string_exn "2001:db8::/32"))

let test_prefix_contains () =
  let p8 = Prefix.of_string_exn "10.0.0.0/8" in
  let p24 = Prefix.of_string_exn "10.1.2.0/24" in
  let other = Prefix.of_string_exn "11.0.0.0/24" in
  check_bool "8 contains 24" true (Prefix.contains p8 p24);
  check_bool "24 not contains 8" false (Prefix.contains p24 p8);
  check_bool "not contains other" false (Prefix.contains p8 other);
  check_bool "contains self" true (Prefix.contains p8 p8);
  check_bool "default contains all v4" true
    (Prefix.contains Prefix.default_v4 other)

let test_prefix_subdivide () =
  let p = Prefix.of_string_exn "10.0.0.0/8" in
  let left, right = Prefix.subdivide p in
  check_string "left" "10.0.0.0/9" (Prefix.to_string left);
  check_string "right" "10.128.0.0/9" (Prefix.to_string right);
  check_bool "parent contains left" true (Prefix.contains p left);
  check_bool "parent contains right" true (Prefix.contains p right);
  let v6 = Prefix.of_string_exn "2001:db8::/32" in
  let l6, r6 = Prefix.subdivide v6 in
  check_bool "v6 children differ" false (Prefix.equal l6 r6);
  check_bool "v6 parent contains children" true
    (Prefix.contains v6 l6 && Prefix.contains v6 r6)

let test_prefix_subdivide_deep_v6 () =
  (* Crossing the 64-bit word boundary. *)
  let p = Prefix.of_string_exn "2001:db8::/64" in
  let left, right = Prefix.subdivide p in
  check_bool "distinct" false (Prefix.equal left right);
  check_int "len" 65 (Prefix.mask_length left);
  check_bool "contained" true (Prefix.contains p right)

let test_prefix_errors () =
  check_bool "bad octet" true (Result.is_error (Prefix.of_string "256.0.0.0/8"));
  check_bool "bad len" true (Result.is_error (Prefix.of_string "10.0.0.0/33"));
  check_bool "no len" true (Result.is_error (Prefix.of_string "10.0.0.0"));
  check_bool "bad v6 len" true (Result.is_error (Prefix.of_string "::/129"));
  check_bool "garbage" true (Result.is_error (Prefix.of_string "foo/8"))

let test_prefix_compare_total_order () =
  let ps =
    List.map Prefix.of_string_exn
      [ "0.0.0.0/0"; "10.0.0.0/8"; "10.0.0.0/16"; "192.168.0.0/16"; "::/0";
        "2001:db8::/32" ]
  in
  let sorted = List.sort Prefix.compare ps in
  check_int "sort stable size" (List.length ps) (List.length sorted);
  (* v4 sorts before v6 *)
  (match (List.nth sorted 0, List.nth sorted (List.length sorted - 1)) with
   | first, last ->
     check_bool "v4 first" true (Prefix.family first = Prefix.V4);
     check_bool "v6 last" true (Prefix.family last = Prefix.V6))

let prefix_qcheck =
  let gen =
    QCheck.Gen.(
      map3
        (fun a b (c, len) -> Prefix.v4 a b c 0 (len mod 25))
        (int_bound 255) (int_bound 255)
        (pair (int_bound 255) (int_bound 255)))
  in
  let arb = QCheck.make ~print:Prefix.to_string gen in
  [
    QCheck.Test.make ~name:"v4 parse/print roundtrip" ~count:500 arb (fun p ->
        Prefix.equal p (Prefix.of_string_exn (Prefix.to_string p)));
    QCheck.Test.make ~name:"subdivide children partition parent" ~count:500 arb
      (fun p ->
        QCheck.assume (Prefix.mask_length p < 32);
        let l, r = Prefix.subdivide p in
        Prefix.contains p l && Prefix.contains p r
        && (not (Prefix.contains l r))
        && not (Prefix.contains r l));
  ]

(* ---------------- Community ---------------- *)

let test_community_roundtrip () =
  let c = Community.make 65100 42 in
  check_string "to_string" "65100:42" (Community.to_string c);
  check_bool "parse" true
    (Community.equal c (Community.of_string_exn "65100:42"));
  check_int "high" 65100 (Community.high c);
  check_int "low" 42 (Community.low c)

let test_community_errors () =
  check_bool "range" true (Result.is_error (Community.of_string "70000:1"));
  check_bool "format" true (Result.is_error (Community.of_string "1:2:3"));
  check_bool "make range" true
    (try
       ignore (Community.make (-1) 0);
       false
     with Invalid_argument _ -> true)

let test_well_known_distinct () =
  let all =
    Community.Well_known.
      [ backbone_default_route; anycast_load_bearing; rack_origin;
        infrastructure; drained ]
  in
  check_int "distinct" (List.length all)
    (List.length (List.sort_uniq Community.compare all))

(* ---------------- As_path ---------------- *)

let asn = Asn.of_int

let test_as_path_basics () =
  let p = As_path.of_asns [ asn 1; asn 2; asn 3 ] in
  check_int "length" 3 (As_path.length p);
  check_bool "mem" true (As_path.mem (asn 2) p);
  check_bool "not mem" false (As_path.mem (asn 9) p);
  check Alcotest.(option int) "origin"
    (Some 3)
    (Option.map Asn.to_int (As_path.origin_asn p));
  check Alcotest.(option int) "first"
    (Some 1)
    (Option.map Asn.to_int (As_path.first_asn p))

let test_as_path_prepend () =
  let p = As_path.of_asns [ asn 2 ] in
  let p = As_path.prepend (asn 1) p in
  check_int "len" 2 (As_path.length p);
  check Alcotest.(option int) "first"
    (Some 1)
    (Option.map Asn.to_int (As_path.first_asn p));
  let padded = As_path.prepend_n 3 (asn 7) p in
  check_int "padded len" 5 (As_path.length padded);
  check_string "padded" "7 7 7 1 2" (As_path.to_string padded)

let test_as_path_set_counts_one () =
  let p = As_path.of_segments [ As_path.Seq [ asn 1 ]; As_path.Set [ asn 2; asn 3 ] ] in
  check_int "set counts 1" 2 (As_path.length p);
  check_bool "mem in set" true (As_path.mem (asn 3) p)

let test_as_path_empty () =
  check_int "empty len" 0 (As_path.length As_path.empty);
  check Alcotest.(option int) "empty origin" None
    (Option.map Asn.to_int (As_path.origin_asn As_path.empty));
  check_bool "of_asns [] is empty" true
    (As_path.equal As_path.empty (As_path.of_asns []))

(* ---------------- Path_regex ---------------- *)

let matches re asns =
  Path_regex.matches_asns (Path_regex.compile_exn re) (List.map asn asns)

let test_regex_literal () =
  check_bool "literal hit" true (matches "2" [ 1; 2; 3 ]);
  check_bool "literal miss" false (matches "9" [ 1; 2; 3 ]);
  check_bool "sequence" true (matches "1 2" [ 1; 2; 3 ]);
  check_bool "sequence order" false (matches "2 1" [ 1; 2; 3 ])

let test_regex_anchors () =
  check_bool "^ hit" true (matches "^1" [ 1; 2; 3 ]);
  check_bool "^ miss" false (matches "^2" [ 1; 2; 3 ]);
  check_bool "$ hit" true (matches "3$" [ 1; 2; 3 ]);
  check_bool "$ miss" false (matches "2$" [ 1; 2; 3 ]);
  check_bool "^$ empty" true (matches "^$" []);
  check_bool "^$ nonempty" false (matches "^$" [ 1 ]);
  check_bool "^1 2 3$ exact" true (matches "^1 2 3$" [ 1; 2; 3 ]);
  check_bool "^1 2$ not exact" false (matches "^1 2$" [ 1; 2; 3 ])

let test_regex_metachars () =
  check_bool "dot" true (matches "^. 2" [ 1; 2 ]);
  check_bool "star zero" true (matches "^1 5* 2$" [ 1; 2 ]);
  check_bool "star many" true (matches "^1 5* 2$" [ 1; 5; 5; 5; 2 ]);
  check_bool "plus needs one" false (matches "^1 5+ 2$" [ 1; 2 ]);
  check_bool "plus ok" true (matches "^1 5+ 2$" [ 1; 5; 2 ]);
  check_bool "opt zero" true (matches "^1 5? 2$" [ 1; 2 ]);
  check_bool "opt one" true (matches "^1 5? 2$" [ 1; 5; 2 ]);
  check_bool "opt two" false (matches "^1 5? 2$" [ 1; 5; 5; 2 ])

let test_regex_alternation_class () =
  check_bool "alt left" true (matches "^(1|2) 9$" [ 1; 9 ]);
  check_bool "alt right" true (matches "^(1|2) 9$" [ 2; 9 ]);
  check_bool "alt miss" false (matches "^(1|2) 9$" [ 3; 9 ]);
  check_bool "class range" true (matches "^[100-200]$" [ 150 ]);
  check_bool "class range miss" false (matches "^[100-200]$" [ 201 ]);
  check_bool "class set" true (matches "^[1,5,9]$" [ 5 ]);
  check_bool "class mixed" true (matches "^[1-3,7]$" [ 7 ])

let test_regex_paper_example () =
  (* "as_path_regex=^12345 matches AS_Paths starting with ASN 12345
     regardless of their lengths" *)
  check_bool "short" true (matches "^12345" [ 12345 ]);
  check_bool "long" true (matches "^12345" [ 12345; 1; 2; 3; 4 ]);
  check_bool "not first" false (matches "^12345" [ 1; 12345 ])

let test_regex_dot_star () =
  check_bool "any path" true (matches ".*" [ 1; 2; 3 ]);
  check_bool "any empty" true (matches ".*" []);
  check_bool "ends with" true (matches ".* 65000$" [ 5; 65000 ]);
  check_bool "whole with infix" true (matches "^1 .* 4$" [ 1; 2; 3; 4 ])

let test_regex_errors () =
  List.iter
    (fun src ->
      check_bool src true (Result.is_error (Path_regex.compile src)))
    [ "("; "[1"; "[3-1]"; ")"; "1 ^ 2"; "abc" ]

let test_regex_underscore_separator () =
  check_bool "underscores" true (matches "^1_2_3$" [ 1; 2; 3 ])

let test_regex_bounded_repetition () =
  check_bool "{2} exact" true (matches "^7{2}$" [ 7; 7 ]);
  check_bool "{2} too few" false (matches "^7{2}$" [ 7 ]);
  check_bool "{2} too many" false (matches "^7{2}$" [ 7; 7; 7 ]);
  check_bool "{1,3} low" true (matches "^7{1,3}$" [ 7 ]);
  check_bool "{1,3} high" true (matches "^7{1,3}$" [ 7; 7; 7 ]);
  check_bool "{1,3} above" false (matches "^7{1,3}$" [ 7; 7; 7; 7 ]);
  check_bool "{2,} open" true (matches "^7{2,}$" [ 7; 7; 7; 7; 7 ]);
  check_bool "{2,} below" false (matches "^7{2,}$" [ 7 ]);
  (* Detecting AS-path padding: three or more consecutive repeats. *)
  check_bool "padding detector" true (matches "9{3,}" [ 1; 9; 9; 9; 2 ]);
  check_bool "no padding" false (matches "9{3,}" [ 1; 9; 9; 2 ]);
  check_bool "descending bound rejected" true
    (Result.is_error (Path_regex.compile "7{3,1}"))

let test_regex_bound_cap () =
  (* Structural expansion of {m,n} is capped: enormous bounds would
     otherwise allocate an NFA state per repetition. *)
  check_bool "huge {m} rejected" true
    (Result.is_error (Path_regex.compile ".{1000000}"));
  check_bool "huge {m,n} rejected" true
    (Result.is_error (Path_regex.compile "7{1,999999}"));
  check_bool "huge {m,} rejected" true
    (Result.is_error (Path_regex.compile "7{1000000,}"));
  check_bool "cap itself accepted" true
    (Result.is_ok (Path_regex.compile "7{1024}"));
  check_bool "just above cap rejected" true
    (Result.is_error (Path_regex.compile "7{1025}"))

let test_regex_spaced_quantifier () =
  (* Separators before a quantifier are insignificant: "123 *" = "123*". *)
  check_bool "spaced star" true (matches "^1 5 * 2$" [ 1; 5; 5; 2 ]);
  check_bool "spaced star zero" true (matches "^1 5 * 2$" [ 1; 2 ]);
  check_bool "spaced plus" true (matches "^7 +$" [ 7; 7 ]);
  check_bool "spaced opt" true (matches "^1 5 ? 2$" [ 1; 2 ]);
  check_bool "spaced braces" true (matches "^7 {2}$" [ 7; 7 ]);
  check_bool "underscore before star" true (matches "^1_5_*_2$" [ 1; 5; 2 ])

let test_regex_negated_class () =
  check_bool "outside" true (matches "^[^100-200]$" [ 99 ]);
  check_bool "inside" false (matches "^[^100-200]$" [ 150 ]);
  check_bool "set negation" true (matches "^[^1,2,3]$" [ 4 ]);
  check_bool "set negation miss" false (matches "^[^1,2,3]$" [ 2 ]);
  (* Paths avoiding a backbone ASN entirely. *)
  check_bool "avoids asn" true (matches "^[^65000]{3}$" [ 1; 2; 3 ]);
  check_bool "contains asn" false (matches "^[^65000]{3}$" [ 1; 65000; 3 ])

let test_regex_at_repetition_cap () =
  (* {1024} is accepted at compile time; make sure the expanded automaton
     actually runs and counts correctly at the cap. *)
  let sevens n = List.init n (fun _ -> 7) in
  check_bool "exactly 1024" true (matches "^7{1024}$" (sevens 1024));
  check_bool "one short" false (matches "^7{1024}$" (sevens 1023));
  check_bool "one over" false (matches "^7{1024}$" (sevens 1025));
  check_bool "open at cap" true (matches "^7{1024,}$" (sevens 2000))

let test_regex_unanchored_subpath () =
  (* Without anchors the pattern matches any contiguous sub-path. *)
  check_bool "infix" true (matches "2 3" [ 1; 2; 3; 4 ]);
  check_bool "prefix" true (matches "1 2" [ 1; 2; 3; 4 ]);
  check_bool "suffix" true (matches "3 4" [ 1; 2; 3; 4 ]);
  check_bool "not contiguous" false (matches "2 4" [ 1; 2; 3; 4 ]);
  check_bool "wrong order" false (matches "3 2" [ 1; 2; 3; 4 ]);
  check_bool "class infix" true (matches "[2-3] 4" [ 1; 3; 4 ]);
  check_bool "negated infix" true (matches "[^9] 4" [ 9; 3; 4 ]);
  check_bool "negated infix miss" false (matches "[^3] 4" [ 1; 3; 4 ]);
  check_bool "left-anchored prefix only" true (matches "^1 2" [ 1; 2; 9 ]);
  check_bool "right-anchored suffix only" true (matches "3 4$" [ 9; 3; 4 ])

let test_regex_separator_tolerant_repetition () =
  (* '_' and spaces are interchangeable separators, including around
     quantifiers and bounded repetitions. *)
  check_bool "underscore braces" true (matches "^7_{2}$" [ 7; 7 ]);
  check_bool "underscore plus" true (matches "^1_5_+_2$" [ 1; 5; 5; 2 ]);
  check_bool "underscore opt" true (matches "^1_5_?_2$" [ 1; 2 ]);
  check_bool "mixed separators" true (matches "^1 _ 2_ 3$" [ 1; 2; 3 ]);
  check_bool "bounded with spaces" true (matches "^7 {2,3} 8$" [ 7; 7; 7; 8 ])

let regex_qcheck =
  let path_gen = QCheck.Gen.(list_size (int_bound 6) (int_range 1 50)) in
  let arb = QCheck.make ~print:(fun l -> String.concat " " (List.map string_of_int l)) path_gen in
  [
    QCheck.Test.make ~name:"exact anchored self-match" ~count:300 arb (fun p ->
        QCheck.assume (p <> []);
        let src = "^" ^ String.concat " " (List.map string_of_int p) ^ "$" in
        matches src p);
    QCheck.Test.make ~name:"dot-star matches everything" ~count:300 arb
      (fun p -> matches ".*" p);
    QCheck.Test.make ~name:"first-asn anchor" ~count:300 arb (fun p ->
        QCheck.assume (p <> []);
        match p with
        | first :: _ -> matches (Printf.sprintf "^%d" first) p
        | [] -> true);
  ]

(* ---------------- Attr ---------------- *)

let test_attr_defaults () =
  let a = Attr.make () in
  check_int "local pref" 100 a.Attr.local_pref;
  check_int "med" 0 a.Attr.med;
  check_bool "no lbw" true (a.Attr.link_bandwidth = None)

let test_attr_prepend_and_communities () =
  let a = Attr.make ~as_path:(As_path.of_asns [ asn 2 ]) () in
  let a = Attr.with_prepended (asn 1) a in
  check_int "len" 2 (As_path.length a.Attr.as_path);
  let c = Community.make 65100 7 in
  let a = Attr.add_community c a in
  check_bool "has community" true (Attr.has_community c a);
  check_bool "not other" false (Attr.has_community (Community.make 65100 8) a)

let test_attr_origin_rank () =
  check_bool "igp < egp" true (Attr.origin_rank Attr.Igp < Attr.origin_rank Attr.Egp);
  check_bool "egp < incomplete" true
    (Attr.origin_rank Attr.Egp < Attr.origin_rank Attr.Incomplete)

let test_attr_equal () =
  let a = Attr.make ~local_pref:200 () in
  let b = Attr.make ~local_pref:200 () in
  check_bool "equal" true (Attr.equal a b);
  check_bool "not equal" false (Attr.equal a (Attr.make ~local_pref:100 ()))

(* ---------------- Suite ---------------- *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "net"
    [
      ( "prefix",
        [
          quick "v4 roundtrip" test_prefix_v4_roundtrip;
          quick "v6 roundtrip" test_prefix_v6_roundtrip;
          quick "canonical host bits" test_prefix_canonical_host_bits;
          quick "families distinct" test_prefix_families_distinct;
          quick "contains" test_prefix_contains;
          quick "subdivide" test_prefix_subdivide;
          quick "subdivide deep v6" test_prefix_subdivide_deep_v6;
          quick "errors" test_prefix_errors;
          quick "compare order" test_prefix_compare_total_order;
        ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) prefix_qcheck );
      ( "community",
        [
          quick "roundtrip" test_community_roundtrip;
          quick "errors" test_community_errors;
          quick "well-known distinct" test_well_known_distinct;
        ] );
      ( "as_path",
        [
          quick "basics" test_as_path_basics;
          quick "prepend" test_as_path_prepend;
          quick "set counts one" test_as_path_set_counts_one;
          quick "empty" test_as_path_empty;
        ] );
      ( "path_regex",
        [
          quick "literal" test_regex_literal;
          quick "anchors" test_regex_anchors;
          quick "metachars" test_regex_metachars;
          quick "alternation and class" test_regex_alternation_class;
          quick "paper example" test_regex_paper_example;
          quick "dot star" test_regex_dot_star;
          quick "errors" test_regex_errors;
          quick "underscore separator" test_regex_underscore_separator;
          quick "bounded repetition" test_regex_bounded_repetition;
          quick "bound cap" test_regex_bound_cap;
          quick "spaced quantifier" test_regex_spaced_quantifier;
          quick "negated class" test_regex_negated_class;
          quick "at repetition cap" test_regex_at_repetition_cap;
          quick "unanchored sub-path" test_regex_unanchored_subpath;
          quick "separator-tolerant repetition"
            test_regex_separator_tolerant_repetition;
        ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) regex_qcheck );
      ( "attr",
        [
          quick "defaults" test_attr_defaults;
          quick "prepend and communities" test_attr_prepend_and_communities;
          quick "origin rank" test_attr_origin_rank;
          quick "equal" test_attr_equal;
        ] );
    ]
