(* Direct unit tests of Bgp.Speaker: the state machine in isolation, with
   hand-fed messages and asserted outboxes (no event queue). *)

open Net

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p10 = Prefix.of_string_exn "10.0.0.0/8"
let env = { Bgp.Speaker.now = 0.0; peer_layer = (fun _ -> None) }

let node id = Topology.Node.make ~id ~name:(Printf.sprintf "r%d" id)
    ~layer:(Topology.Node.Other "R") ()

let speaker ?config ?hooks id peers =
  let sp = Bgp.Speaker.create ?config ?hooks (node id) in
  List.iter (fun peer -> Bgp.Speaker.add_peer sp ~peer ~sessions:1) peers;
  sp

let update ?(lp = 100) ?(asns = [ 99 ]) prefix =
  Bgp.Msg.Update
    {
      prefix;
      attr =
        Attr.make ~local_pref:lp
          ~as_path:(As_path.of_asns (List.map Asn.of_int asns))
          ();
    }

let msgs_to peer outbox = List.filter (fun (p, _, _) -> p = peer) outbox

let is_update = function
  | _, _, Bgp.Msg.Update _ -> true
  | _, _, (Bgp.Msg.Withdraw _ | Bgp.Msg.Keepalive | Bgp.Msg.Eor) -> false

(* ---------------- origination ---------------- *)

let test_originate_advertises_to_all_peers () =
  let sp = speaker 0 [ 1; 2; 3 ] in
  let out = Bgp.Speaker.originate sp env p10 (Attr.make ()) in
  check_int "three updates" 3 (List.length out);
  check_bool "all updates" true (List.for_all is_update out);
  (* The advertised path carries the originator's ASN. *)
  List.iter
    (fun (_, _, msg) ->
      match msg with
      | Bgp.Msg.Update { attr; _ } ->
        check_int "one hop" 1 (As_path.length attr.Attr.as_path);
        check_bool "own asn first" true
          (As_path.first_asn attr.Attr.as_path = Some (Bgp.Speaker.asn sp))
      | Bgp.Msg.Withdraw _ | Bgp.Msg.Keepalive | Bgp.Msg.Eor ->
        Alcotest.fail "unexpected non-update")
    out;
  match Bgp.Speaker.fib_lookup sp p10 with
  | Some Bgp.Speaker.Local -> ()
  | Some (Bgp.Speaker.Entries _) | None -> Alcotest.fail "origin not Local"

let test_withdraw_origin_sends_withdraws () =
  let sp = speaker 0 [ 1; 2 ] in
  ignore (Bgp.Speaker.originate sp env p10 (Attr.make ()));
  let out = Bgp.Speaker.withdraw_origin sp env p10 in
  check_int "two withdraws" 2 (List.length out);
  check_bool "all withdraws" true (List.for_all (fun m -> not (is_update m)) out);
  check_bool "fib empty" true (Bgp.Speaker.fib_lookup sp p10 = None)

(* ---------------- propagation, split horizon, dedup ---------------- *)

let test_receive_propagates_with_split_horizon () =
  let sp = speaker 5 [ 1; 2 ] in
  let out = Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10) in
  (* Advertised to peer 2 but never back to peer 1. *)
  check_int "to peer 2" 1 (List.length (msgs_to 2 out));
  check_int "not to peer 1" 0 (List.length (msgs_to 1 out))

let test_duplicate_update_is_silent () =
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  let out = Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10) in
  check_int "no re-advertisement" 0 (List.length out)

let test_better_route_triggers_readvertisement () =
  let sp = speaker 5 [ 1; 2; 3 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update ~asns:[ 7; 8 ] p10));
  (* A shorter path from peer 2 becomes best: peers (except 2) learn it;
     peer 2 gets a withdraw of the previously advertised peer-1 path
     (split horizon forbids echoing its own path back). *)
  let out = Bgp.Speaker.receive sp env ~peer:2 ~session:0 (update ~asns:[ 9 ] p10) in
  check_bool "peer 3 told" true (List.exists is_update (msgs_to 3 out));
  check_bool "peer 2 never told its own path" true
    (List.for_all (fun m -> not (is_update m)) (msgs_to 2 out))

let test_own_asn_in_path_rejected () =
  let sp = speaker 5 [ 1 ] in
  let own = Asn.to_int (Bgp.Speaker.asn sp) in
  let out =
    Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update ~asns:[ 7; own; 8 ] p10)
  in
  check_int "nothing happens" 0 (List.length out);
  check_bool "not installed" true (Bgp.Speaker.fib_lookup sp p10 = None)

let test_withdraw_removes_and_propagates () =
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  let out =
    Bgp.Speaker.receive sp env ~peer:1 ~session:0 (Bgp.Msg.Withdraw { prefix = p10 })
  in
  check_bool "fib cleared" true (Bgp.Speaker.fib_lookup sp p10 = None);
  check_int "withdraw forwarded to peer 2" 1 (List.length (msgs_to 2 out));
  check_bool "it is a withdraw" true
    (List.for_all (fun m -> not (is_update m)) (msgs_to 2 out))

let test_failover_between_peers () =
  let sp = speaker 5 [ 1; 2; 3 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update ~asns:[ 9 ] p10));
  ignore (Bgp.Speaker.receive sp env ~peer:2 ~session:0 (update ~asns:[ 8; 9 ] p10));
  (* Best (peer 1) withdrawn: falls over to peer 2's longer path and
     re-advertises it. *)
  let out =
    Bgp.Speaker.receive sp env ~peer:1 ~session:0 (Bgp.Msg.Withdraw { prefix = p10 })
  in
  (match Bgp.Speaker.fib_lookup sp p10 with
   | Some (Bgp.Speaker.Entries [ e ]) -> check_int "via peer 2" 2 e.Bgp.Speaker.next_hop
   | Some (Bgp.Speaker.Entries _) | Some Bgp.Speaker.Local | None ->
     Alcotest.fail "expected failover entry");
  check_bool "peer 3 re-advertised" true
    (List.exists is_update (msgs_to 3 out))

(* ---------------- session lifecycle ---------------- *)

let test_session_down_flushes_routes () =
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  let out = Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:false in
  check_bool "fib cleared" true (Bgp.Speaker.fib_lookup sp p10 = None);
  check_bool "withdraw sent to peer 2" true
    (List.exists (fun m -> not (is_update m)) (msgs_to 2 out))

let test_session_up_resends_table () =
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.originate sp env p10 (Attr.make ()));
  ignore (Bgp.Speaker.set_session sp env ~peer:2 ~session:0 ~up:false);
  let out = Bgp.Speaker.set_session sp env ~peer:2 ~session:0 ~up:true in
  check_bool "table resent" true (List.exists is_update (msgs_to 2 out))

let test_peers_reports_live_sessions () =
  let sp = speaker 5 [ 1; 2 ] in
  check_int "two peers" 2 (List.length (Bgp.Speaker.peers sp));
  ignore (Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:false);
  check_int "one live peer" 1 (List.length (Bgp.Speaker.peers sp))

(* ---------------- session edge cases ---------------- *)

let test_flap_with_withdrawal_in_flight () =
  (* A session flaps while the far end had a withdrawal in flight: the late
     Withdraw arrives after the flush + resync and must be a no-op, not
     resurrect or double-remove state. *)
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  ignore (Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:false);
  ignore (Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:true);
  check_bool "flushed by the flap" true (Bgp.Speaker.fib_lookup sp p10 = None);
  let out =
    Bgp.Speaker.receive sp env ~peer:1 ~session:0
      (Bgp.Msg.Withdraw { prefix = p10 })
  in
  check_int "late withdraw is silent" 0 (List.length out);
  check_bool "still no route" true (Bgp.Speaker.fib_lookup sp p10 = None);
  (* The same route re-announced over the new session works normally. *)
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  check_bool "relearned" true (Bgp.Speaker.fib_lookup sp p10 <> None)

let test_multi_session_single_drop () =
  (* Two sessions to the same peer; the route is known over both. Dropping
     one session must keep the route installed (learned over the survivor)
     and advertise nothing new — the FIB and Adj-RIB-Out are unchanged. *)
  let sp = Bgp.Speaker.create (node 5) in
  Bgp.Speaker.add_peer sp ~peer:1 ~sessions:2;
  Bgp.Speaker.add_peer sp ~peer:2 ~sessions:1;
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:1 (update p10));
  let before = Bgp.Speaker.advertised_to sp ~peer:2 in
  let out = Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:false in
  check_bool "route survives on session 1" true
    (Bgp.Speaker.fib_lookup sp p10 <> None);
  check_int "no churn toward peer 2" 0 (List.length (msgs_to 2 out));
  check_bool "adj-rib-out unchanged" true
    (before = Bgp.Speaker.advertised_to sp ~peer:2);
  (* Dropping the last session flushes for real. *)
  let out = Bgp.Speaker.set_session sp env ~peer:1 ~session:1 ~up:false in
  check_bool "flushed after last session" true
    (Bgp.Speaker.fib_lookup sp p10 = None);
  check_bool "withdraw to peer 2" true
    (List.exists (fun m -> not (is_update m)) (msgs_to 2 out))

let test_gr_stale_mark_and_refresh () =
  (* Graceful restart, receiver side: a stale-marked route keeps forwarding,
     an Update refresh clears the mark, End-of-RIB sweeps the rest. *)
  let sp = speaker 5 [ 1; 2 ] in
  Bgp.Speaker.set_graceful_restart sp true;
  let p11 = Prefix.of_string_exn "11.0.0.0/8" in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p11));
  let out =
    Bgp.Speaker.set_session ~stale:true sp env ~peer:1 ~session:0 ~up:false
  in
  check_bool "still forwarding p10" true (Bgp.Speaker.fib_lookup sp p10 <> None);
  check_bool "still forwarding p11" true (Bgp.Speaker.fib_lookup sp p11 <> None);
  check_bool "marked stale" true
    (Bgp.Speaker.is_stale sp p10 ~peer:1 ~session:0);
  check_bool "no withdraw cascade" true
    (List.for_all is_update (msgs_to 2 out));
  ignore (Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:true);
  (* The restarted peer re-announces only p10, then signals End-of-RIB. *)
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  check_bool "refresh clears the mark" true
    (not (Bgp.Speaker.is_stale sp p10 ~peer:1 ~session:0));
  let out = Bgp.Speaker.receive sp env ~peer:1 ~session:0 Bgp.Msg.Eor in
  check_bool "p10 survives the sweep" true
    (Bgp.Speaker.fib_lookup sp p10 <> None);
  check_bool "p11 swept" true (Bgp.Speaker.fib_lookup sp p11 = None);
  check_bool "p11 withdrawn downstream" true
    (List.exists (fun m -> not (is_update m)) (msgs_to 2 out));
  check_int "no marks left" 0 (List.length (Bgp.Speaker.stale_routes sp))

let test_restart_during_restart () =
  (* The speaker crashes again while still recovering from its first crash
     (GR on): preserved FIB entries must survive both resets, and the
     stale-path sweep after the second recovery must clear exactly the
     never-refreshed entries. *)
  let sp = speaker 5 [ 1; 2 ] in
  Bgp.Speaker.set_graceful_restart sp true;
  let p11 = Prefix.of_string_exn "11.0.0.0/8" in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p11));
  Bgp.Speaker.reset sp;
  check_int "both preserved" 2
    (List.length (Bgp.Speaker.fib_stale_prefixes sp));
  (* Second crash before any re-learning. *)
  Bgp.Speaker.reset sp;
  check_int "still preserved" 2
    (List.length (Bgp.Speaker.fib_stale_prefixes sp));
  check_bool "still forwarding" true (Bgp.Speaker.fib_lookup sp p10 <> None);
  (* Recovery: only p10 is re-learned; the sweep expires p11 alone. *)
  ignore (Bgp.Speaker.set_session sp env ~peer:1 ~session:0 ~up:true);
  ignore (Bgp.Speaker.set_session sp env ~peer:2 ~session:0 ~up:true);
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  check_bool "p10 re-derived" true
    (not (List.exists (Prefix.equal p10) (Bgp.Speaker.fib_stale_prefixes sp)));
  ignore (Bgp.Speaker.sweep_own_stale sp env);
  check_bool "p10 survives" true (Bgp.Speaker.fib_lookup sp p10 <> None);
  check_bool "p11 expired" true (Bgp.Speaker.fib_lookup sp p11 = None);
  check_int "nothing preserved anymore" 0
    (List.length (Bgp.Speaker.fib_stale_prefixes sp))

(* ---------------- policy interaction ---------------- *)

let test_ingress_policy_reject_blocks_install () =
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.set_ingress_policy sp env ~peer:1 Bgp.Policy.reject_all);
  let out = Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10) in
  check_bool "not installed" true (Bgp.Speaker.fib_lookup sp p10 = None);
  check_int "nothing advertised" 0 (List.length out)

let test_egress_policy_change_triggers_withdraw () =
  let sp = speaker 5 [ 1; 2 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  check_int "advertised to 2" 1
    (List.length (Bgp.Speaker.advertised_to sp ~peer:2));
  let out = Bgp.Speaker.set_egress_policy sp env ~peer:2 Bgp.Policy.reject_all in
  check_bool "withdraw to 2" true
    (List.exists (fun m -> not (is_update m)) (msgs_to 2 out));
  check_int "rib-out cleared" 0
    (List.length (Bgp.Speaker.advertised_to sp ~peer:2))

let test_advertised_attr_shape () =
  (* Advertised attributes: own ASN prepended, local-pref reset (eBGP does
     not propagate it), link bandwidth absent without wcmp. *)
  let sp = speaker 5 [ 1; 2 ] in
  let out =
    Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update ~lp:300 ~asns:[ 9 ] p10)
  in
  match msgs_to 2 out with
  | [ (_, _, Bgp.Msg.Update { attr; _ }) ] ->
    check_int "length grew" 2 (As_path.length attr.Attr.as_path);
    check_int "local pref reset" 100 attr.Attr.local_pref;
    check_bool "no link bandwidth" true (attr.Attr.link_bandwidth = None)
  | _ -> Alcotest.fail "expected exactly one update to peer 2"

let test_wcmp_advertises_total_capacity () =
  let config = { Bgp.Speaker.default_config with wcmp = true } in
  let sp = speaker ~config 5 [ 1; 2; 3 ] in
  ignore
    (Bgp.Speaker.receive sp env ~peer:1 ~session:0
       (Bgp.Msg.Update
          { prefix = p10;
            attr = Attr.make ~link_bandwidth:3 ~as_path:(As_path.of_asns [ Asn.of_int 9 ]) () }));
  let out =
    Bgp.Speaker.receive sp env ~peer:2 ~session:0
      (Bgp.Msg.Update
         { prefix = p10;
           attr = Attr.make ~link_bandwidth:5 ~as_path:(As_path.of_asns [ Asn.of_int 8 ]) () })
  in
  (* Total capacity 3 + 5 = 8 advertised downstream. *)
  match msgs_to 3 out with
  | [ (_, _, Bgp.Msg.Update { attr; _ }) ] ->
    check_bool "aggregated capacity" true (attr.Attr.link_bandwidth = Some 8)
  | _ -> Alcotest.fail "expected update to peer 3"

(* ---------------- candidate ordering ---------------- *)

(* Regression for the sort-key change in [raw_routes]: candidates must come
   out in (peer, session) order regardless of Adj-RIB-In insertion (hash)
   order, and the multipath set must preserve that order. The old
   implementation sorted whole (peer, session, attr) triples polymorphically;
   the key alone must produce the identical order. *)
let test_candidates_sorted_by_peer_session () =
  let sp = speaker 9 [] in
  List.iter (fun peer -> Bgp.Speaker.add_peer sp ~peer ~sessions:2) [ 3; 1; 2 ];
  (* Scrambled arrival order, identical attributes (equal-cost everywhere). *)
  List.iter
    (fun (peer, session) ->
      ignore (Bgp.Speaker.receive sp env ~peer ~session (update p10)))
    [ (2, 1); (1, 0); (3, 0); (1, 1); (2, 0); (3, 1) ];
  let keys =
    List.map
      (fun (p : Bgp.Path.t) -> (p.Bgp.Path.peer, p.Bgp.Path.session))
      (Bgp.Speaker.candidates sp p10)
  in
  Alcotest.(check (list (pair int int)))
    "(peer, session) sorted"
    [ (1, 0); (1, 1); (2, 0); (2, 1); (3, 0); (3, 1) ]
    keys;
  (* The decision tiebreak (lowest peer, then session) picks (1, 0), and the
     equal-cost FIB set lists next hops in the same canonical order. *)
  (match Bgp.Speaker.fib_lookup sp p10 with
   | Some (Bgp.Speaker.Entries entries) ->
     Alcotest.(check (list (pair int int)))
       "fib entries in candidate order"
       [ (1, 0); (1, 1); (2, 0); (2, 1); (3, 0); (3, 1) ]
       (List.map (fun e -> (e.Bgp.Speaker.next_hop, e.Bgp.Speaker.session)) entries)
   | Some Bgp.Speaker.Local | None -> Alcotest.fail "expected ECMP entries");
  (* Raw Adj-RIB-In inspection shares the ordering contract. *)
  let raw_keys =
    List.map (fun (p, s, _) -> (p, s)) (Bgp.Speaker.adj_rib_in sp p10)
  in
  Alcotest.(check (list (pair int int)))
    "adj_rib_in sorted"
    [ (1, 0); (1, 1); (2, 0); (2, 1); (3, 0); (3, 1) ]
    raw_keys

(* ---------------- longest prefix match ---------------- *)

let test_fib_longest_match () =
  let sp = speaker 5 [ 1 ] in
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update Prefix.default_v4));
  ignore (Bgp.Speaker.receive sp env ~peer:1 ~session:0 (update p10));
  let host = Prefix.v4 10 1 2 3 32 in
  (match Bgp.Speaker.fib_longest_match sp host with
   | Some (matched, _) -> check_bool "specific wins" true (Prefix.equal matched p10)
   | None -> Alcotest.fail "no match");
  let other = Prefix.v4 11 0 0 1 32 in
  match Bgp.Speaker.fib_longest_match sp other with
  | Some (matched, _) ->
    check_bool "default catches the rest" true (Prefix.equal matched Prefix.default_v4)
  | None -> Alcotest.fail "no default match"

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "speaker"
    [
      ( "origination",
        [
          quick "advertises to all" test_originate_advertises_to_all_peers;
          quick "withdraw origin" test_withdraw_origin_sends_withdraws;
        ] );
      ( "propagation",
        [
          quick "split horizon" test_receive_propagates_with_split_horizon;
          quick "duplicate silent" test_duplicate_update_is_silent;
          quick "better route re-advertised" test_better_route_triggers_readvertisement;
          quick "own asn rejected" test_own_asn_in_path_rejected;
          quick "withdraw propagates" test_withdraw_removes_and_propagates;
          quick "failover" test_failover_between_peers;
        ] );
      ( "sessions",
        [
          quick "down flushes" test_session_down_flushes_routes;
          quick "up resends" test_session_up_resends_table;
          quick "peers live" test_peers_reports_live_sessions;
          quick "flap with withdrawal in flight" test_flap_with_withdrawal_in_flight;
          quick "multi-session single drop" test_multi_session_single_drop;
          quick "gr stale mark and refresh" test_gr_stale_mark_and_refresh;
          quick "restart during restart" test_restart_during_restart;
        ] );
      ( "policy",
        [
          quick "ingress reject" test_ingress_policy_reject_blocks_install;
          quick "egress change withdraws" test_egress_policy_change_triggers_withdraw;
          quick "advertised attr shape" test_advertised_attr_shape;
          quick "wcmp capacity aggregation" test_wcmp_advertises_total_capacity;
        ] );
      ( "decision",
        [ quick "candidates sorted" test_candidates_sorted_by_peer_session ] );
      ("fib", [ quick "longest match" test_fib_longest_match ]);
    ]
