(* Tests for overload robustness: admission control and the bounded
   priority queue (typed sheds, conflict serialization, journal recovery,
   GC protection of queued plans), asynchronous NSDB replication with
   bounded catch-up, the batched fleet pub/sub, the runtime SLO watchdog's
   automatic rollback, and the continuous-operations driver's
   bit-reproducibility. *)

open Centralium

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* A minimal plan: one empty RPA on [device]. Two such plans conflict iff
   they share the device (no destinations to overlap). *)
let tiny_plan name device =
  {
    Controller.plan_name = name;
    rpas = [ (device, Rpa.empty) ];
    phases = [ [ device ] ];
    pre_checks = [];
    post_checks = [];
  }

let small_config = { Ops.max_queue = 3; per_tenant = 2; per_class = 2 }

(* ---------------- admission control ---------------- *)

let test_admission_typed_sheds () =
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let q = Ops.create ~config:small_config nsdb in
  let submit ?(tenant = "ops") ?(cls = Ops.Standard) p =
    Ops.submit q ~tenant ~cls p
  in
  check_bool "first admitted" true
    (match submit (tiny_plan "a" 1) with Ops.Admitted _ -> true | _ -> false);
  check_bool "second admitted" true
    (match submit ~cls:Ops.Bulk (tiny_plan "b" 2) with
     | Ops.Admitted _ -> true
     | _ -> false);
  (* tenant "ops" is now at its per-tenant limit of 2 *)
  check_bool "per-tenant limit sheds with the tenant's name" true
    (match submit (tiny_plan "c" 3) with
     | Ops.Overloaded (Ops.Tenant_limit { tenant = "ops"; limit = 2 }) ->
       true
     | _ -> false);
  check_bool "per-class limit sheds" true
    (match submit ~tenant:"te" (tiny_plan "d" 4) with
     | Ops.Admitted _ -> true
     | _ -> false);
  check_bool "queue-full sheds" true
    (match submit ~tenant:"ml" ~cls:Ops.Interactive (tiny_plan "e" 5) with
     | Ops.Overloaded (Ops.Queue_full { limit = 3 }) -> true
     | _ -> false);
  check_int "nothing shed was enqueued" 3 (Ops.depth q);
  check_int "every submission counted" 5 (Ops.submissions q);
  let sheds = Ops.shed_log q in
  check_int "both sheds audited" 2 (List.length sheds);
  check_bool "shed audit names tenant and plan" true
    (match sheds with
     | (_, "ops", "c", _) :: (_, "ml", "e", _) :: _ -> true
     | _ -> false)

let test_priority_and_conflict_serialization () =
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let q =
    Ops.create ~config:{ Ops.max_queue = 8; per_tenant = 8; per_class = 8 }
      nsdb
  in
  let admit ~cls p =
    match Ops.submit q ~tenant:"ops" ~cls p with
    | Ops.Admitted seq -> seq
    | Ops.Overloaded _ -> Alcotest.fail "unexpected shed"
  in
  (* a (Bulk, dev 1), b (Interactive, dev 1): b conflicts with the earlier
     a, so priority must NOT let it overtake. c (Interactive, dev 2) is
     independent and may. *)
  let sa = admit ~cls:Ops.Bulk (tiny_plan "a" 1) in
  let _sb = admit ~cls:Ops.Interactive (tiny_plan "b" 1) in
  let sc = admit ~cls:Ops.Interactive (tiny_plan "c" 2) in
  (match Ops.next_ready q with
   | Some (seq, p) ->
     check_int "independent interactive plan overtakes" sc seq;
     check_string "and it is c" "c" p.Controller.plan_name
   | None -> Alcotest.fail "queue should be ready");
  Ops.mark_started q sc;
  Ops.mark_done q sc;
  (match Ops.next_ready q with
   | Some (seq, p) ->
     check_int "conflicting pair serializes in submission order" sa seq;
     check_string "a before the higher-priority b" "a" p.Controller.plan_name
   | None -> Alcotest.fail "queue should be ready");
  Ops.mark_started q sa;
  (* a is started but not done: the queue re-offers a for resume — b
     still conflicts and must not be dispatched. *)
  check_bool "the in-flight a is re-offered, not the conflicting b" true
    (match Ops.next_ready q with Some (s, _) -> s = sa | None -> false);
  Ops.mark_done q sa;
  check_bool "b runnable once a is done" true
    (match Ops.next_ready q with
     | Some (_, p) -> p.Controller.plan_name = "b"
     | None -> false)

let test_recover_rebuilds_queue () =
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let q = Ops.create ~config:small_config nsdb in
  let plans = [ tiny_plan "a" 1; tiny_plan "b" 2; tiny_plan "c" 3 ] in
  let seqs =
    List.map
      (fun p ->
        match Ops.submit q ~tenant:"ops" ~cls:Ops.Bulk p with
        | Ops.Admitted s -> s
        | Ops.Overloaded _ -> Alcotest.fail "unexpected shed")
      (List.filteri (fun i _ -> i < 2) plans)
  in
  ignore
    (Ops.submit q ~tenant:"te" ~cls:Ops.Bulk (List.nth plans 2)
     |> function
     | Ops.Overloaded _ -> ()
     | Ops.Admitted _ -> ());
  (* shed one for the audit trail *)
  ignore (Ops.submit q ~tenant:"ops" ~cls:Ops.Bulk (tiny_plan "d" 4));
  Ops.mark_started q (List.hd seqs);
  (* The new leader rebuilds from the journal alone. *)
  let lookup name =
    List.find_opt (fun p -> p.Controller.plan_name = name) plans
  in
  let q' = Ops.recover ~config:small_config ~lookup nsdb in
  check_int "depth survives" (Ops.depth q) (Ops.depth q');
  check_bool "queued names survive in order" true
    (Ops.queued_names q = Ops.queued_names q');
  check_int "submission counter survives" (Ops.submissions q)
    (Ops.submissions q');
  check_bool "shed audit survives" true (Ops.shed_log q = Ops.shed_log q');
  (* resume-before-new-work: the crashed predecessor's started entry *)
  check_bool "started entry dispatched first" true
    (match Ops.next_ready q' with
     | Some (s, p) -> s = List.hd seqs && p.Controller.plan_name = "a"
     | None -> false)

(* ---------------- journal GC protection ---------------- *)

let gc_fixture () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:1 x.Topology.Clos.xgraph in
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let controller = Controller.create ~nsdb net in
  (nsdb, controller)

let test_gc_spares_queued_plan () =
  let nsdb, controller = gc_fixture () in
  for i = 1 to 3 do
    Nsdb.Replicated.set nsdb
      ~path:(Printf.sprintf "journal/p%d/status" i)
      (Nsdb.String "completed");
    Nsdb.Replicated.set nsdb
      ~path:(Printf.sprintf "journal/p%d/completed_seq" i)
      (Nsdb.Int i)
  done;
  (* p1, the oldest completed journal, is queued for another run: the GC
     must not prune it however deep the retention cut goes. *)
  Nsdb.Replicated.set nsdb ~path:"opsq/00000000/plan" (Nsdb.String "p1");
  Nsdb.Replicated.set nsdb ~path:"opsq/00000000/state"
    (Nsdb.String "queued");
  check_int "pruned all unprotected completed journals" 2
    (Controller.journal_gc ~retain:0 controller);
  check_bool "queued plan's journal survives retain=0" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/p1/status"
    = Some (Nsdb.String "completed"));
  (* Once the queue entry is done the protection lifts. *)
  Nsdb.Replicated.set nsdb ~path:"opsq/00000000/state" (Nsdb.String "done");
  check_int "prunable after mark_done" 1
    (Controller.journal_gc ~retain:0 controller);
  check_bool "and gone" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/p1/status" = None)

let test_completed_seq_deferred_while_queued () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:2 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4
    (Net.Attr.make ());
  ignore (Bgp.Network.converge net);
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let controller = Controller.create ~nsdb net in
  let device = List.hd x.Topology.Clos.xfsws in
  let plan = tiny_plan "queued-again" device in
  (* The same plan name is queued for a second run while the first
     completes: its GC ordering stamp must wait, or the pruning order
     could race the re-run. *)
  Nsdb.Replicated.set nsdb ~path:"opsq/00000000/plan"
    (Nsdb.String "queued-again");
  Nsdb.Replicated.set nsdb ~path:"opsq/00000000/state"
    (Nsdb.String "queued");
  (match Controller.deploy_resilient controller plan with
   | Controller.Completed _ -> ()
   | _ -> Alcotest.fail "tiny plan should deploy");
  check_bool "journal completed" true
    (Controller.journal_status controller plan = Some "completed");
  check_bool "completed_seq deferred while queued" true
    (Nsdb.Replicated.get_one nsdb
       ~path:"journal/queued-again/completed_seq"
    = None);
  (* Without a queue entry the stamp appears as usual. *)
  Nsdb.Replicated.set nsdb ~path:"opsq/00000000/state" (Nsdb.String "done");
  (match Controller.deploy_resilient controller plan with
   | Controller.Completed _ -> ()
   | _ -> Alcotest.fail "re-deploy should complete");
  check_bool "completed_seq stamped once dequeued" true
    (Nsdb.Replicated.get_one nsdb
       ~path:"journal/queued-again/completed_seq"
    <> None)

(* ---------------- async NSDB replication ---------------- *)

let test_async_lag_and_batched_catchup () =
  let db = Nsdb.Replicated.create ~replicas:3 in
  Nsdb.Replicated.enable_async ~lag_threshold:100 ~batch_budget:2 db;
  for i = 1 to 5 do
    Nsdb.Replicated.set db ~path:(Printf.sprintf "k%d" i) (Nsdb.Int i)
  done;
  check_int "leader is current" 0 (Nsdb.Replicated.lag db 0);
  check_int "follower lags by the backlog" 5 (Nsdb.Replicated.lag db 1);
  check_bool "leader read sees the write" true
    (Nsdb.Replicated.get_one db ~path:"k5" = Some (Nsdb.Int 5));
  Nsdb.Replicated.flush db;
  check_int "one flush applies one batch budget" 3
    (Nsdb.Replicated.lag db 1);
  Nsdb.Replicated.flush db;
  Nsdb.Replicated.flush db;
  check_int "drained" 0 (Nsdb.Replicated.max_lag db);
  check_bool "follower store converged" true
    (Nsdb.get_one (Nsdb.Replicated.replica db 1) ~path:"k5"
    = Some (Nsdb.Int 5));
  check_int "no snapshot ships under the threshold" 0
    (Nsdb.Replicated.snapshot_ships db);
  check_int "lag peak recorded" 5 (Nsdb.Replicated.lag_peak db)

let test_snapshot_ship_beyond_threshold () =
  let db = Nsdb.Replicated.create ~replicas:2 in
  Nsdb.Replicated.enable_async ~lag_threshold:3 ~batch_budget:2 db;
  for i = 1 to 8 do
    Nsdb.Replicated.set db ~path:(Printf.sprintf "k%d" i) (Nsdb.Int i)
  done;
  Nsdb.Replicated.flush db;
  check_bool "beyond the threshold the replica snapshot-ships" true
    (Nsdb.Replicated.snapshot_ships db >= 1);
  check_int "and is immediately current" 0 (Nsdb.Replicated.max_lag db);
  check_bool "follower has the full state" true
    (Nsdb.get_one (Nsdb.Replicated.replica db 1) ~path:"k8"
    = Some (Nsdb.Int 8))

let test_promotion_drains_backlog () =
  let db = Nsdb.Replicated.create ~replicas:3 in
  Nsdb.Replicated.enable_async ~lag_threshold:100 ~batch_budget:1 db;
  for i = 1 to 6 do
    Nsdb.Replicated.set db ~path:(Printf.sprintf "k%d" i) (Nsdb.Int i)
  done;
  (* Kill the leader with the followers 6 ops behind: the promoted
     replica must drain its backlog before serving reads. *)
  Nsdb.Replicated.fail_replica db 0;
  check_bool "promoted leader serves the latest write" true
    (Nsdb.Replicated.get_one db ~path:"k6" = Some (Nsdb.Int 6));
  check_bool "CAS on the promoted leader linearizes on current state" true
    (Nsdb.Replicated.compare_and_set db ~path:"k6"
       ~expected:(Some (Nsdb.Int 6))
       (Nsdb.Int 60))

(* ---------------- batched pub/sub ---------------- *)

let test_pubsub_coalesce_and_unsubscribe () =
  let db = Nsdb.Replicated.create ~replicas:2 in
  let batches = ref [] in
  let token =
    Nsdb.Replicated.subscribe db ~path:"a/**" (fun b ->
        batches := b :: !batches)
  in
  Nsdb.Replicated.set db ~path:"a/x" (Nsdb.Int 1);
  Nsdb.Replicated.set db ~path:"a/x" (Nsdb.Int 2);
  Nsdb.Replicated.set db ~path:"a/y" (Nsdb.Int 3);
  Nsdb.Replicated.set db ~path:"unrelated" (Nsdb.Int 9);
  check_int "nothing delivered before the flush" 0 (List.length !batches);
  Nsdb.Replicated.flush db;
  (match !batches with
   | [ `Changes changes ] ->
     check_bool "coalesced keep-last in first-touch order" true
       (changes
       = [ ("a/x", Some (Nsdb.Int 2)); ("a/y", Some (Nsdb.Int 3)) ])
   | _ -> Alcotest.fail "expected exactly one Changes batch");
  Nsdb.Replicated.delete db ~path:"a/y";
  Nsdb.Replicated.flush db;
  (match !batches with
   | [ `Changes changes; _ ] ->
     check_bool "delete notifies with None" true
       (changes = [ ("a/y", None) ])
   | _ -> Alcotest.fail "expected a second Changes batch");
  check_int "one live subscriber" 1 (Nsdb.Replicated.subscriber_count db);
  Nsdb.Replicated.unsubscribe db token;
  Nsdb.Replicated.unsubscribe db token;
  (* double-unsubscribe is a no-op *)
  check_int "unsubscribed" 0 (Nsdb.Replicated.subscriber_count db);
  Nsdb.Replicated.set db ~path:"a/z" (Nsdb.Int 4);
  Nsdb.Replicated.flush db;
  check_int "no delivery after unsubscribe" 2 (List.length !batches)

let test_pubsub_overflow_resyncs () =
  let db = Nsdb.Replicated.create ~replicas:2 in
  let batches = ref [] in
  ignore
    (Nsdb.Replicated.subscribe ~limit:2 db ~path:"a/**" (fun b ->
         batches := b :: !batches));
  for i = 1 to 5 do
    Nsdb.Replicated.set db ~path:(Printf.sprintf "a/k%d" i) (Nsdb.Int i)
  done;
  Nsdb.Replicated.flush db;
  (match !batches with
   | [ `Resync snapshot ] ->
     check_int "resync carries the full watched state" 5
       (List.length snapshot)
   | _ -> Alcotest.fail "overflow must downgrade to Resync");
  check_int "overflow accounted" 1 (Nsdb.Replicated.overflow_resyncs db);
  (* After the resync the delta stream resumes. *)
  Nsdb.Replicated.set db ~path:"a/k1" (Nsdb.Int 10);
  Nsdb.Replicated.flush db;
  check_bool "delta stream resumes after resync" true
    (match !batches with `Changes _ :: _ -> true | _ -> false)

(* ---------------- the runtime watchdog ---------------- *)

let watchdog_fixture () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:5 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4
    (Net.Attr.make
       ~communities:
         (Net.Community.Set.singleton
            Net.Community.Well_known.backbone_default_route)
       ());
  ignore (Bgp.Network.converge net);
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let controller = Controller.create ~nsdb net in
  (x, net, nsdb, controller)

(* An unsatisfiable min-next-hop guard: its targets withdraw the default
   and the layer below black-holes — the watchdog must catch it. *)
let canary_plan x =
  Centralium.Apps.Min_next_hop_guard.plan x.Topology.Clos.xgraph
    ~destination:
      (Destination.Tagged Net.Community.Well_known.backbone_default_route)
    ~threshold:(Path_selection.Fraction 1.1) ~keep_fib_warm:false
    ~targets:x.Topology.Clos.xssws ~origination_layer:Topology.Node.Eb

let test_watchdog_breach_rolls_back () =
  let x, net, nsdb, controller = watchdog_fixture () in
  let demands = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
  let wd =
    Ops.Watchdog.create ~net ~nsdb ~demands ~prefix:Net.Prefix.default_v4 ()
  in
  let plan = canary_plan x in
  Ops.Watchdog.arm wd ~plan_name:plan.Controller.plan_name;
  let outcome =
    Controller.deploy_resilient ~watchdog:(Ops.Watchdog.probe wd) controller
      plan
  in
  ignore (Bgp.Network.converge net);
  Nsdb.Replicated.flush nsdb;
  (match outcome with
   | Controller.Rolled_back { reasons; _ } ->
     check_bool "reasons name the watchdog" true
       (List.exists
          (fun r ->
            String.length r >= 9 && String.sub r 0 9 = "watchdog:")
          reasons)
   | _ -> Alcotest.fail "watchdog breach must roll the plan back");
  check_bool "remediation event journaled" true
    (Controller.journal_remediation controller plan <> None);
  check_bool "watchdog observed the remediation via its subscription" true
    (Ops.Watchdog.remediations wd <> []);
  check_bool "violations were seen" true (Ops.Watchdog.violations_seen wd > 0);
  Ops.Watchdog.disarm wd;
  check_bool "rollback left the network violation-free" true
    (Invariant.check net = []);
  check_bool "and the blackhole window was bounded" true
    (Ops.Watchdog.blackhole_seconds wd > 0.0)

let test_watchdog_window_resets () =
  let x, net, nsdb, controller = watchdog_fixture () in
  let demands = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
  let wd =
    Ops.Watchdog.create ~net ~nsdb ~demands ~prefix:Net.Prefix.default_v4 ()
  in
  let bad = canary_plan x in
  Ops.Watchdog.arm wd ~plan_name:bad.Controller.plan_name;
  (match
     Controller.deploy_resilient ~watchdog:(Ops.Watchdog.probe wd)
       controller bad
   with
   | Controller.Rolled_back _ -> ()
   | _ -> Alcotest.fail "canary must breach");
  ignore (Bgp.Network.converge net);
  Ops.Watchdog.disarm wd;
  (* A later healthy plan must not inherit the breached window. *)
  let device = List.hd x.Topology.Clos.xfsws in
  let healthy = tiny_plan "healthy" device in
  Ops.Watchdog.arm wd ~plan_name:"healthy";
  (match
     Controller.deploy_resilient ~watchdog:(Ops.Watchdog.probe wd)
       controller healthy
   with
   | Controller.Completed _ -> ()
   | _ -> Alcotest.fail "healthy plan must complete after a reset window");
  Ops.Watchdog.disarm wd;
  check_int "arm/disarm pairs leave no subscriber behind" 0
    (Nsdb.Replicated.subscriber_count nsdb)

(* ---------------- the continuous-operations driver ---------------- *)

let test_continuous_bit_reproducible () =
  let run () = Experiments.Scenarios.Continuous.run ~seed:42 ~hours:2 () in
  let a = run () and b = run () in
  let open Experiments.Scenarios.Continuous in
  check_bool "queue order reproduces" true (a.queue_order = b.queue_order);
  check_bool "shed set reproduces" true (a.shed_set = b.shed_set);
  check_string "FIB digest reproduces" a.fib_digest b.fib_digest;
  check_int "zero unremediated violations" 0 a.unremediated_violations;
  check_bool "sheds happened and were typed" true (a.shed > 0);
  check_bool "canaries were remediated" true
    (a.rolled_back > 0 && a.remediations >= a.rolled_back)

let () =
  Alcotest.run "ops"
    [
      ( "admission",
        [
          Alcotest.test_case "typed sheds" `Quick test_admission_typed_sheds;
          Alcotest.test_case "priority + conflict serialization" `Quick
            test_priority_and_conflict_serialization;
          Alcotest.test_case "recover rebuilds the queue" `Quick
            test_recover_rebuilds_queue;
        ] );
      ( "journal-gc",
        [
          Alcotest.test_case "spares queued plans" `Quick
            test_gc_spares_queued_plan;
          Alcotest.test_case "completed_seq deferred while queued" `Quick
            test_completed_seq_deferred_while_queued;
        ] );
      ( "async-replication",
        [
          Alcotest.test_case "lag + batched catch-up" `Quick
            test_async_lag_and_batched_catchup;
          Alcotest.test_case "snapshot ship beyond threshold" `Quick
            test_snapshot_ship_beyond_threshold;
          Alcotest.test_case "promotion drains the backlog" `Quick
            test_promotion_drains_backlog;
        ] );
      ( "pubsub",
        [
          Alcotest.test_case "coalesce + unsubscribe" `Quick
            test_pubsub_coalesce_and_unsubscribe;
          Alcotest.test_case "overflow resync" `Quick
            test_pubsub_overflow_resyncs;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "breach rolls back" `Quick
            test_watchdog_breach_rolls_back;
          Alcotest.test_case "window resets per plan" `Quick
            test_watchdog_window_resets;
        ] );
      ( "continuous",
        [
          Alcotest.test_case "bit-reproducible" `Slow
            test_continuous_bit_reproducible;
        ] );
    ]
