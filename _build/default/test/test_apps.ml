(* Tests for the controller applications (the 10+ use cases of Section 5),
   the debuggability tooling (Section 7.2), and the pre-deployment
   verification suite (Section 7.1). *)

open Centralium

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bb = Net.Community.Well_known.backbone_default_route

(* Substring search for warning-message assertions. *)
module Astring_like = struct
  let contains_substring haystack needle =
    let h = String.length haystack and n = String.length needle in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
end

let tagged_attr ?(extra = []) () =
  List.fold_left
    (fun a c -> Net.Attr.add_community c a)
    (Net.Attr.make ~communities:(Net.Community.Set.singleton bb) ())
    extra

let fabric_fixture () =
  let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let net = Bgp.Network.create ~seed:21 f.Topology.Clos.graph in
  List.iter
    (fun eb -> Bgp.Network.originate net eb Net.Prefix.default_v4 (tagged_attr ()))
    f.Topology.Clos.ebs;
  ignore (Bgp.Network.converge net);
  (f, net, Controller.create ~seed:22 net)

(* ---------------- app coverage ---------------- *)

let test_app_catalog () =
  check_bool "10+ use cases onboarded" true (List.length Apps.all_app_names >= 10);
  check_int "no duplicates" (List.length Apps.all_app_names)
    (List.length (List.sort_uniq compare Apps.all_app_names))

let test_anycast_stability_pins_paths () =
  (* An anycast prefix originated by two FADUs; maintenance drains one
     FADU's other traffic but the pinned prefix keeps using both. *)
  let f, net, controller = fabric_fixture () in
  let anycast = Net.Prefix.of_string_exn "198.51.100.0/24" in
  let anycast_attr =
    Net.Attr.make
      ~communities:
        (Net.Community.Set.singleton Net.Community.Well_known.anycast_load_bearing)
      ()
  in
  (* Anycast service lives behind every FADU of grid 0. *)
  let origins =
    List.filter
      (fun fadu -> (Topology.Graph.node f.Topology.Clos.graph fadu).Topology.Node.grid = 0)
      f.Topology.Clos.fadus
  in
  List.iter (fun o -> Bgp.Network.originate net o anycast anycast_attr) origins;
  ignore (Bgp.Network.converge net);
  let ssw = List.nth f.Topology.Clos.ssws 0 in
  let plan =
    Apps.Anycast_stability.plan f.Topology.Clos.graph
      ~origin_asn:
        (Topology.Graph.node f.Topology.Clos.graph (List.nth origins 0)).Topology.Node.asn
      ~targets:[ ssw ] ~origination_layer:Topology.Node.Fadu
  in
  (* The anycast origins differ per ASN; pin to the first origin's paths. *)
  (match Controller.deploy controller plan with
   | Ok _ -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  match Bgp.Network.fib net ssw anycast with
  | Some (Bgp.Speaker.Entries entries) ->
    check_bool "pinned to stable origin" true (List.length entries >= 1)
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "anycast route missing"

let test_backup_preference_failover () =
  (* A destination reachable via a primary FA pair and a backup DMAG; the
     RPA prefers primary while it has 2+ paths and fails over cleanly. *)
  let r = Topology.Clos.rollout () in
  let net = Bgp.Network.create ~seed:23 r.Topology.Clos.rgraph in
  Bgp.Network.originate net r.rbackbone Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  let ssw = List.nth r.rssws 0 in
  let fa_asns =
    List.map
      (fun fa -> (Topology.Graph.node r.rgraph fa).Topology.Node.asn)
      r.rfas
  in
  let rpa =
    Apps.Backup_preference.rpa ~destination:Destination.backbone_default
      ~primary:(Signature.make ~neighbor_asns:fa_asns ~origin_asn:(Topology.Graph.node r.rgraph r.rbackbone).Topology.Node.asn ())
      ~primary_min_next_hop:(Path_selection.Count 2)
      ~backup:Signature.any ()
  in
  Bgp.Network.set_hooks net ssw (Engine.hooks (Engine.create rpa));
  ignore (Bgp.Network.converge net);
  (match Bgp.Network.fib net ssw Net.Prefix.default_v4 with
   | Some (Bgp.Speaker.Entries entries) ->
     check_int "primary: both FAs" 2 (List.length entries)
   | Some Bgp.Speaker.Local | None -> Alcotest.fail "no route");
  (* Kill one FA uplink: primary drops below 2, backup takes over (here the
     backup signature matches anything, so the remaining FA path). *)
  (match r.rfas with
   | fa :: _ -> Bgp.Network.set_link net ssw fa ~up:false
   | [] -> ());
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net ssw Net.Prefix.default_v4 with
  | Some (Bgp.Speaker.Entries entries) ->
    check_bool "failover keeps reachability" true (List.length entries >= 1)
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "blackhole after failover"

let test_prefix_limit_guard_blocks_leak () =
  let f, net, controller = fabric_fixture () in
  let fauu = List.nth f.Topology.Clos.fauus 0 in
  let plan =
    Apps.Prefix_limit_guard.plan f.Topology.Clos.graph
      ~covering:Net.Prefix.default_v4 ~max_mask_length:20 ~targets:[ fauu ]
      ~origination_layer:Topology.Node.Eb
  in
  (match Controller.deploy controller plan with
   | Ok _ -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  (* An EB leaks a /24: the FAUU must reject it; a /16 passes. *)
  let eb = List.nth f.Topology.Clos.ebs 0 in
  let leak = Net.Prefix.of_string_exn "10.9.9.0/24" in
  let ok = Net.Prefix.of_string_exn "10.9.0.0/16" in
  Bgp.Network.originate net eb leak (tagged_attr ());
  Bgp.Network.originate net eb ok (tagged_attr ());
  ignore (Bgp.Network.converge net);
  check_bool "leak filtered" true (Bgp.Network.fib net fauu leak = None);
  check_bool "aggregate accepted" true (Bgp.Network.fib net fauu ok <> None)

let test_maintenance_drain_execute_undo () =
  let f, net, controller = fabric_fixture () in
  let victim = List.nth f.Topology.Clos.fadus 0 in
  let before =
    match Bgp.Network.fib net (List.nth f.Topology.Clos.ssws 0) Net.Prefix.default_v4 with
    | Some (Bgp.Speaker.Entries entries) -> List.length entries
    | Some Bgp.Speaker.Local | None -> 0
  in
  (match Apps.Maintenance_drain.execute controller ~devices:[ victim ] () with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  (* The drained FADU's paths are now less preferred: SSWs stop using it. *)
  let ssw_using_victim () =
    List.exists
      (fun ssw ->
        match Bgp.Network.fib net ssw Net.Prefix.default_v4 with
        | Some (Bgp.Speaker.Entries entries) ->
          List.exists (fun e -> e.Bgp.Speaker.next_hop = victim) entries
        | Some Bgp.Speaker.Local | None -> false)
      f.Topology.Clos.ssws
  in
  check_bool "drained FADU avoided" false (ssw_using_victim ());
  (match Apps.Maintenance_drain.undo controller ~devices:[ victim ] () with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  check_bool "traffic restored" true (ssw_using_victim ());
  let after =
    match Bgp.Network.fib net (List.nth f.Topology.Clos.ssws 0) Net.Prefix.default_v4 with
    | Some (Bgp.Speaker.Entries entries) -> List.length entries
    | Some Bgp.Speaker.Local | None -> 0
  in
  check_int "path count restored" before after

let test_policy_rollout_coordinates () =
  (* The unified orchestration: base policy tags routes with a community,
     then the RPA that depends on the tag deploys. Out-of-order deployment
     would leave the RPA matching nothing. *)
  let f, net, controller = fabric_fixture () in
  let marker = Net.Community.make 65100 99 in
  let base_policy =
    [ Bgp.Policy.rule [ Bgp.Policy.Add_community marker ] ]
  in
  let ssw = List.nth f.Topology.Clos.ssws 0 in
  let rpa =
    Rpa.make
      ~path_selection:
        [
          Path_selection.make
            [
              Path_selection.statement
                ~path_sets:
                  [
                    Path_selection.path_set ~name:"tagged"
                      (Signature.make ~communities:[ marker ] ());
                  ]
                (Destination.Tagged bb);
            ];
        ]
      ()
  in
  let plan =
    {
      Controller.plan_name = "rollout-test";
      rpas = [ (ssw, rpa) ];
      phases = [ [ ssw ] ];
      pre_checks = [];
      post_checks = [];
    }
  in
  let eb_peers_of_fadus = f.Topology.Clos.fadus in
  (match
     Apps.Policy_rollout.execute controller
       ~base_policies:(List.map (fun d -> (d, base_policy)) eb_peers_of_fadus)
       ~rpa_plan:plan
   with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  (* The RPA's path set must be live: the SSW selects tagged FADU paths. *)
  match Bgp.Network.fib net ssw Net.Prefix.default_v4 with
  | Some (Bgp.Speaker.Entries entries) ->
    check_bool "tagged paths selected" true (List.length entries >= 1)
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "no route after rollout"

let test_job_placement_pins_plane () =
  (* A training job's prefix is pinned to spine plane 0; when that plane is
     out, the fallback set keeps the job reachable. *)
  let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let g = f.Topology.Clos.graph in
  let net = Bgp.Network.create ~seed:51 g in
  let job_tag = Net.Community.make 65100 77 in
  let job_prefix = Net.Prefix.of_string_exn "192.0.2.0/24" in
  (* The job's parameter servers sit behind a FADU in every grid. *)
  let origins =
    List.filter (fun d -> (Topology.Graph.node g d).Topology.Node.grid >= 0)
      f.Topology.Clos.fadus
  in
  List.iter
    (fun o ->
      Bgp.Network.originate net o job_prefix
        (Net.Attr.make ~communities:(Net.Community.Set.singleton job_tag) ()))
    origins;
  ignore (Bgp.Network.converge net);
  let plane0 =
    List.filter (fun d -> (Topology.Graph.node g d).Topology.Node.plane = 0)
      f.Topology.Clos.ssws
  in
  let fsw = List.nth f.Topology.Clos.fsws 0 in
  let controller = Controller.create ~seed:52 net in
  let plan =
    Apps.Job_placement.plan g ~job_tag ~preferred_plane:plane0
      ~plane_min_next_hop:(Path_selection.Count 1) ~targets:[ fsw ]
      ~origination_layer:Topology.Node.Fadu ()
  in
  (match Controller.deploy controller plan with
   | Ok _ -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  (* FSW 0's plane-0 uplink: the pinned route must only use plane-0 SSWs
     (an FSW peers with one plane, so this checks pinning took effect at
     all: entries only to plane-0 neighbors). *)
  (match Bgp.Network.fib net fsw job_prefix with
   | Some (Bgp.Speaker.Entries entries) ->
     check_bool "uses preferred plane only" true
       (List.for_all
          (fun e ->
            (Topology.Graph.node g e.Bgp.Speaker.next_hop).Topology.Node.plane = 0)
          entries)
   | Some Bgp.Speaker.Local | None -> Alcotest.fail "job route missing");
  (* Plane 0 goes away: fallback set keeps the job routable. *)
  List.iter
    (fun ssw ->
      match Topology.Graph.find_link g fsw ssw with
      | Some _ -> Bgp.Network.set_link net fsw ssw ~up:false
      | None -> ())
    plane0;
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net fsw job_prefix with
  | Some (Bgp.Speaker.Entries _) | Some Bgp.Speaker.Local -> ()
  | None ->
    (* The FSW may simply have no remaining uplinks in this small fabric;
       accept either a fallback route or a clean withdrawal. *)
    check_bool "fsw lost all uplinks" true
      (List.for_all
         (fun ((n : Topology.Node.t), (l : Topology.Graph.link)) ->
           (not (Topology.Node.layer_equal n.Topology.Node.layer Topology.Node.Ssw))
           || not l.Topology.Graph.up)
         (Topology.Graph.all_neighbors g fsw))

let test_slow_roll_completes () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:24 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  let controller = Controller.create ~seed:25 net in
  let plan = Apps.Expansion_equalizer.plan x in
  let progress =
    Apps.Slow_roll.execute controller ~plan ~chunk:2 ~max_out_of_sync:0
  in
  check_bool "not halted" false progress.Apps.Slow_roll.halted;
  check_int "all applied" (List.length plan.Controller.rpas)
    progress.Apps.Slow_roll.applied;
  check_int "no stragglers" 0 (List.length progress.Apps.Slow_roll.out_of_sync)

let test_slow_roll_halts_on_stragglers () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:26 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  let controller = Controller.create ~seed:27 net in
  let agent = Controller.agent controller in
  let plan = Apps.Expansion_equalizer.plan x in
  (* Make the first-phase devices unreachable: the gate must trip and the
     later phases must stay untouched. *)
  (match plan.Controller.phases with
   | first :: _ ->
     List.iter (fun d -> Switch_agent.set_reachable agent ~device:d false) first
   | [] -> Alcotest.fail "no phases");
  let progress =
    Apps.Slow_roll.execute controller ~plan ~chunk:2 ~max_out_of_sync:1
  in
  check_bool "halted" true progress.Apps.Slow_roll.halted;
  check_bool "stragglers reported" true
    (List.length progress.Apps.Slow_roll.out_of_sync > 1);
  (* Later-phase devices never received hooks. *)
  (match List.rev plan.Controller.phases with
   | last :: _ ->
     List.iter
       (fun d ->
         check_bool "untouched" true
           (Bgp.Rib_policy.is_native
              (Bgp.Speaker.hooks (Bgp.Network.speaker net d))))
       last
   | [] -> ())

(* ---------------- Debug tooling ---------------- *)

let test_debug_explains_chosen_set () =
  let engine =
    Engine.create
      (Apps.Path_equalize.rpa ~destination:(Destination.Tagged bb)
         ~origin_asn:(Net.Asn.of_int 9)
         ~via:[ Net.Asn.of_int 1; Net.Asn.of_int 2 ])
  in
  let path peer asns =
    Bgp.Path.make ~peer ~session:0
      ~attr:(tagged_attr () |> fun a ->
             { a with Net.Attr.as_path = Net.As_path.of_asns (List.map Net.Asn.of_int asns) })
  in
  let ctx =
    {
      Bgp.Rib_policy.device = 0;
      prefix = Net.Prefix.default_v4;
      now = 0.0;
      peer_layer = (fun _ -> Some (Topology.Node.Other "R"));
      live_peers_in_layer = (fun _ -> 2);
    }
  in
  let e =
    Debug.explain engine ~ctx ~candidates:[ path 1 [ 1; 9 ]; path 2 [ 2; 7; 9 ] ]
  in
  (match e.Debug.verdict with
   | Debug.Path_set_chosen { trials; _ } ->
     check_int "one trial" 1 (List.length trials);
     check_bool "chosen" true (List.exists (fun t -> t.Debug.chosen) trials)
   | Debug.No_matching_statement | Debug.Native_fallback _
   | Debug.Withdrawn_min_next_hop _ ->
     Alcotest.fail "expected chosen path set");
  check_int "both selected" 2 e.Debug.selected_count;
  check_bool "advertised the long one" true
    (match e.Debug.advertised with
     | Some s -> String.length s > 0
     | None -> false)

let test_debug_explains_withdrawal () =
  let engine =
    Engine.create
      (Apps.Min_next_hop_guard.rpa ~destination:(Destination.Tagged bb)
         ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm:true)
  in
  let ctx =
    {
      Bgp.Rib_policy.device = 0;
      prefix = Net.Prefix.default_v4;
      now = 0.0;
      peer_layer = (fun _ -> Some Topology.Node.Fa);
      live_peers_in_layer = (fun _ -> 4);
    }
  in
  let candidate =
    Bgp.Path.make ~peer:1 ~session:0
      ~attr:
        { (tagged_attr ()) with
          Net.Attr.as_path = Net.As_path.of_asns [ Net.Asn.of_int 1 ] }
  in
  let e = Debug.explain engine ~ctx ~candidates:[ candidate ] in
  match e.Debug.verdict with
  | Debug.Withdrawn_min_next_hop { available; required; fib_kept_warm; _ } ->
    check_int "available" 1 available;
    check_int "required" 3 required;
    check_bool "warm" true fib_kept_warm;
    check_bool "withdrawn" true (e.Debug.advertised = None);
    check_int "fib kept" 1 e.Debug.selected_count
  | Debug.No_matching_statement | Debug.Path_set_chosen _
  | Debug.Native_fallback _ ->
    Alcotest.fail "expected min-next-hop withdrawal"

let test_debug_active_rpas_on_switch () =
  let f, net, controller = fabric_fixture () in
  let agent = Controller.agent controller in
  let device = List.nth f.Topology.Clos.ssws 0 in
  (match Debug.active_rpas net agent ~device with
   | [ line ] -> check_bool "native reported" true (line = "(native BGP, no RPAs)")
   | _ -> Alcotest.fail "expected native marker");
  Switch_agent.set_intended agent ~device
    (Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
       ~threshold:(Path_selection.Count 2) ~keep_fib_warm:false);
  ignore (Switch_agent.reconcile_device agent device);
  (* The RPC is applied through the event queue: until the network runs,
     the speaker still runs native hooks and the tool must say so. *)
  (match Debug.active_rpas net agent ~device with
   | [ line ] ->
     check_bool "inconsistency flagged" true
       (String.length line >= 7 && String.sub line 0 7 = "WARNING")
   | _ -> Alcotest.fail "expected a warning before convergence");
  ignore (Bgp.Network.converge net);
  let lines = Debug.active_rpas net agent ~device in
  check_bool "rendered rpa shown" true (List.length lines > 3)

let test_debug_explain_route_live () =
  let f, net, controller = fabric_fixture () in
  let agent = Controller.agent controller in
  let device = List.nth f.Topology.Clos.ssws 0 in
  check_bool "native: no explanation" true
    (Debug.explain_route net agent ~device Net.Prefix.default_v4 = None);
  Switch_agent.set_intended agent ~device
    (Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
       ~threshold:(Path_selection.Count 1) ~keep_fib_warm:false);
  ignore (Switch_agent.reconcile_device agent device);
  ignore (Bgp.Network.converge net);
  match Debug.explain_route net agent ~device Net.Prefix.default_v4 with
  | Some e -> check_bool "selected something" true (e.Debug.selected_count >= 1)
  | None -> Alcotest.fail "expected an explanation"

(* ---------------- Fallback compiler (Section 7.4) ---------------- *)

let expansion_with_fav2 seed =
  let x = Topology.Clos.expansion () in
  let fav2 = Topology.Clos.add_fav2 x in
  let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  (x, fav2, net)

let fav2_share (x : Topology.Clos.expansion) fav2 net =
  let demands = List.map (fun f -> (f, 1.0)) x.xfsws in
  let result =
    Dataplane.Traffic.route_prefix net Net.Prefix.default_v4 ~demands
  in
  Dataplane.Metrics.transit_share result ~device:fav2
    ~total:(Dataplane.Traffic.total_demand demands)

let equalize_intent =
  Rpa.make
    ~path_selection:
      [
        Path_selection.make
          [
            Path_selection.statement ~name:"equalize"
              ~path_sets:[ Path_selection.path_set ~name:"all" Signature.any ]
              (Destination.Tagged bb);
          ];
      ]
    ()

let test_fallback_compiler_equalizes () =
  let x, fav2, net = expansion_with_fav2 61 in
  check_bool "collapse without anything" true (fav2_share x fav2 net > 0.99);
  let compiled =
    Fallback_compiler.compile x.xgraph ~origination_layer:Topology.Node.Eb
      ~targets:(x.xfsws @ x.xssws) equalize_intent
  in
  (* Padding rules exist only where path lengths differ: on SSWs for their
     FAv2 sessions. *)
  check_int "one rule per SSW" (List.length x.xssws)
    (List.length compiled.Fallback_compiler.ingress_policies);
  List.iter
    (fun (device, peer, _) ->
      check_bool "on an SSW" true (List.mem device x.xssws);
      check_int "toward FAv2" fav2 peer)
    compiled.Fallback_compiler.ingress_policies;
  Fallback_compiler.apply net compiled;
  ignore (Bgp.Network.converge net);
  let share = fav2_share x fav2 net in
  check_bool "compiled padding balances" true (share < 0.25 && share > 0.05)

let test_fallback_compiler_redaction_risk () =
  (* The paper's warning: redacting the transitory policies re-creates the
     collapse (whereas removing an RPA restores native selection of the
     then-final topology). *)
  let x, fav2, net = expansion_with_fav2 62 in
  let compiled =
    Fallback_compiler.compile x.xgraph ~origination_layer:Topology.Node.Eb
      ~targets:(x.xfsws @ x.xssws) equalize_intent
  in
  Fallback_compiler.apply net compiled;
  ignore (Bgp.Network.converge net);
  Fallback_compiler.remove net compiled;
  ignore (Bgp.Network.converge net);
  check_bool "collapse returns after cleanup" true (fav2_share x fav2 net > 0.99)

let test_fallback_compiler_warns_on_inexpressible () =
  let x, _fav2, _net = expansion_with_fav2 63 in
  let rpa =
    Rpa.merge equalize_intent
      (Rpa.merge
         (Apps.Min_next_hop_guard.rpa ~destination:(Destination.Tagged bb)
            ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm:true)
         (Apps.Wcmp_freeze.rpa ~destination:(Destination.Tagged bb)
            ~live_weight:4
            ~drained_signature:
              (Signature.make
                 ~communities:[ Net.Community.Well_known.drained ]
                 ())
            ()))
  in
  let compiled =
    Fallback_compiler.compile x.xgraph ~origination_layer:Topology.Node.Eb
      ~targets:x.xssws rpa
  in
  check_bool "min-next-hop warned" true
    (List.exists
       (fun w ->
         Astring_like.contains_substring w "BgpNativeMinNextHop")
       compiled.Fallback_compiler.warnings);
  check_bool "weights warned" true
    (List.exists
       (fun w -> Astring_like.contains_substring w "WCMP")
       compiled.Fallback_compiler.warnings)

(* ---------------- Verification suite ---------------- *)

let test_standard_suite_passes () =
  List.iter
    (fun outcome ->
      check_bool
        (Format.asprintf "%a" Verification.pp_outcome outcome)
        true
        (Verification.passed outcome))
    (Verification.qualify_all (Verification.standard_suite ()))

let test_verification_catches_bad_intent () =
  (* A spec whose intent cannot hold must FAIL, not silently pass. *)
  let bad_spec =
    {
      Verification.spec_name = "impossible intent";
      build =
        (fun () ->
          let x = Topology.Clos.expansion () in
          let net = Bgp.Network.create ~seed:41 x.Topology.Clos.xgraph in
          Bgp.Network.originate net x.backbone Net.Prefix.default_v4
            (tagged_attr ());
          ignore (Bgp.Network.converge net);
          let plan = Apps.Expansion_equalizer.plan x in
          let intent =
            [
              (match x.xssws with
               | ssw :: _ ->
                 Health.path_count_at_least net ~device:ssw
                   Net.Prefix.default_v4 ~count:999
               | [] -> failwith "no ssws");
            ]
          in
          (net, plan, intent));
    }
  in
  let outcome = Verification.qualify bad_spec in
  check_bool "deployment fine" true outcome.Verification.deployed;
  check_bool "intent failed" true (outcome.Verification.intent_failures <> []);
  check_bool "not passed" false (Verification.passed outcome)

let test_verification_build_exception_reported () =
  let crashing =
    { Verification.spec_name = "crash"; build = (fun () -> failwith "boom") }
  in
  let outcome = Verification.qualify crashing in
  check_bool "reported as error" true (outcome.Verification.errors <> []);
  check_bool "not passed" false (Verification.passed outcome)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "apps"
    [
      ( "applications",
        [
          quick "catalog" test_app_catalog;
          quick "anycast stability" test_anycast_stability_pins_paths;
          quick "backup preference failover" test_backup_preference_failover;
          quick "prefix limit guard" test_prefix_limit_guard_blocks_leak;
          quick "maintenance drain" test_maintenance_drain_execute_undo;
          quick "policy rollout" test_policy_rollout_coordinates;
          quick "job placement" test_job_placement_pins_plane;
          quick "slow roll completes" test_slow_roll_completes;
          quick "slow roll halts" test_slow_roll_halts_on_stragglers;
        ] );
      ( "debug",
        [
          quick "explains chosen set" test_debug_explains_chosen_set;
          quick "explains withdrawal" test_debug_explains_withdrawal;
          quick "active rpas" test_debug_active_rpas_on_switch;
          quick "explain live route" test_debug_explain_route_live;
        ] );
      ( "fallback-compiler",
        [
          quick "equalizes via padding" test_fallback_compiler_equalizes;
          quick "redaction risk" test_fallback_compiler_redaction_risk;
          quick "warns on inexpressible" test_fallback_compiler_warns_on_inexpressible;
        ] );
      ( "verification",
        [
          quick "standard suite passes" test_standard_suite_passes;
          quick "catches bad intent" test_verification_catches_bad_intent;
          quick "reports build crash" test_verification_build_exception_reported;
        ] );
    ]
