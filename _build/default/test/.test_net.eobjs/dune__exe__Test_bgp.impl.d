test/test_bgp.ml: Alcotest As_path Asn Attr Bgp Centralium Community Dataplane Int List Net Prefix Printf Topology
