test/test_scenarios.ml: Alcotest Experiments List Scenarios
