test/test_te.ml: Alcotest Float List Printf Te
