test/test_planner.ml: Alcotest Float List Planner Printf Topology
