test/test_dataplane.ml: Alcotest Bgp Dataplane Float Hashtbl Int List Net Option
