test/test_openr.ml: Alcotest Bgp Centralium Float Fun List Openr Printf QCheck QCheck_alcotest String Topology
