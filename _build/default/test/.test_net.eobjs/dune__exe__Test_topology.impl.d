test/test_topology.ml: Alcotest Array Clos Dsim Graph Hashtbl Int List Migration Node Printf Queue Topology
