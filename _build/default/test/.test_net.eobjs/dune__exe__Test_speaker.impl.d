test/test_speaker.ml: Alcotest As_path Asn Attr Bgp List Net Prefix Printf Topology
