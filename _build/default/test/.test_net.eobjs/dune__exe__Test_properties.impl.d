test/test_properties.ml: Alcotest Bgp Centralium Dataplane Dsim Format Int List Net Printf QCheck QCheck_alcotest String Te Topology
