test/test_net.ml: Alcotest As_path Asn Attr Community List Net Option Path_regex Prefix Printf QCheck QCheck_alcotest Result String
