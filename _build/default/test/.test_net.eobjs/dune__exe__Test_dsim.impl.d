test/test_dsim.ml: Alcotest Array Dsim Event_queue Float Fun Int List Rng Stats
