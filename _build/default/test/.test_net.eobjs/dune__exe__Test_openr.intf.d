test/test_openr.mli:
