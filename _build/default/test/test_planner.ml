(* Tests for lib/planner: Table 3 shapes. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rows () = Planner.table3 ()

let test_all_categories_present () =
  check_int "five rows" 5 (List.length (rows ()));
  let categories = List.map (fun r -> r.Planner.category) (rows ()) in
  check_bool "in taxonomy order" true
    (categories = Topology.Migration.all_categories)

let test_rpa_reduces_steps () =
  List.iter
    (fun r ->
      check_bool
        (Topology.Migration.category_label r.Planner.category)
        true
        (Planner.step_count r.Planner.with_rpa
         < Planner.step_count r.Planner.without_rpa))
    (rows ())

let test_rpa_reduces_days () =
  List.iter
    (fun r ->
      check_bool
        (Topology.Migration.category_label r.Planner.category)
        true
        (Planner.duration_days r.Planner.with_rpa
         <= Planner.duration_days r.Planner.without_rpa))
    (rows ())

let find category =
  List.find (fun r -> r.Planner.category = category) (rows ())

(* The published Table 3 step counts and day totals. *)
let test_published_step_counts () =
  let expect category steps_without steps_with =
    let r = find category in
    check_int "w/o" steps_without (Planner.step_count r.Planner.without_rpa);
    check_int "w/" steps_with (Planner.step_count r.Planner.with_rpa)
  in
  expect Topology.Migration.Routing_system_evolution 2 1;
  expect Topology.Migration.Incremental_capacity_scaling 9 3;
  expect Topology.Migration.Differential_traffic_distribution 3 1;
  expect Topology.Migration.Routing_policy_transitions 5 3;
  expect Topology.Migration.Traffic_drain_for_maintenance 3 1

let test_published_day_totals () =
  let close a b = Float.abs (a -. b) < 1.5 in
  let expect category days_without days_with =
    let r = find category in
    check_bool "days w/o" true
      (close (Planner.duration_days r.Planner.without_rpa) days_without);
    check_bool "days w/" true
      (close (Planner.duration_days r.Planner.with_rpa) days_with)
  in
  expect Topology.Migration.Routing_system_evolution 42.0 0.0;
  expect Topology.Migration.Incremental_capacity_scaling 189.0 21.0;
  expect Topology.Migration.Differential_traffic_distribution 63.0 7.0;
  expect Topology.Migration.Routing_policy_transitions 105.0 21.0;
  expect Topology.Migration.Traffic_drain_for_maintenance 0.12 0.02

let test_rpa_loc_ranges () =
  (* The paper's Table 3 LOC bands, measured on our generated RPAs. *)
  let in_range category lo hi =
    let r = find category in
    check_bool
      (Printf.sprintf "%s loc=%d in [%d, %d]"
         (Topology.Migration.category_label category)
         r.Planner.rpa_loc lo hi)
      true
      (r.Planner.rpa_loc >= lo && r.Planner.rpa_loc <= hi)
  in
  in_range Topology.Migration.Routing_system_evolution 300 1000;
  in_range Topology.Migration.Incremental_capacity_scaling 200 300;
  in_range Topology.Migration.Differential_traffic_distribution 50 100;
  in_range Topology.Migration.Routing_policy_transitions 100 200;
  in_range Topology.Migration.Traffic_drain_for_maintenance 1 50

let test_cadence_dominates_config_pushes () =
  check_bool "config push costs a cadence" true
    (Planner.step_days Planner.Config_push = Planner.push_cadence_days);
  check_bool "rpa push is sub-day" true (Planner.step_days Planner.Rpa_push < 1.0)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "planner"
    [
      ( "table3",
        [
          quick "categories present" test_all_categories_present;
          quick "rpa reduces steps" test_rpa_reduces_steps;
          quick "rpa reduces days" test_rpa_reduces_days;
          quick "published step counts" test_published_step_counts;
          quick "published day totals" test_published_day_totals;
          quick "rpa loc ranges" test_rpa_loc_ranges;
          quick "cadence constants" test_cadence_dominates_config_pushes;
        ] );
    ]
