(* Tests for lib/openr: LSAs, SPF, flooding, and management-plane
   integration with the switch agent. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node id = Topology.Node.make ~id ~name:(Printf.sprintf "n%d" id)
    ~layer:(Topology.Node.Other "R") ()

let graph_of edges n =
  let g = Topology.Graph.create () in
  for i = 0 to n - 1 do
    Topology.Graph.add_node g (node i)
  done;
  List.iter (fun (a, b) -> Topology.Graph.add_link g a b) edges;
  g

(* ---------------- Lsa ---------------- *)

let test_lsa_newer () =
  let a = Openr.Lsa.make ~originator:1 ~sequence:2 ~adjacencies:[] in
  let b = Openr.Lsa.make ~originator:1 ~sequence:1 ~adjacencies:[] in
  let c = Openr.Lsa.make ~originator:2 ~sequence:9 ~adjacencies:[] in
  check_bool "higher seq newer" true (Openr.Lsa.newer a ~than:b);
  check_bool "not older" false (Openr.Lsa.newer b ~than:a);
  check_bool "different originator never newer" false (Openr.Lsa.newer c ~than:a)

(* ---------------- Spf ---------------- *)

let test_spf_line () =
  let adjacency = function
    | 0 -> [ (1, 1.0) ]
    | 1 -> [ (0, 1.0); (2, 1.0) ]
    | 2 -> [ (1, 1.0) ]
    | _ -> []
  in
  let routes = Openr.Spf.compute ~source:0 ~adjacency ~nodes:[ 0; 1; 2 ] in
  check_bool "2 reachable" true (Openr.Spf.reachable routes 2);
  Alcotest.(check (option (float 1e-9))) "distance" (Some 2.0)
    (Openr.Spf.distance routes 2);
  Alcotest.(check (list int)) "first hop" [ 1 ] (Openr.Spf.first_hops routes 2)

let test_spf_ecmp () =
  (* Diamond 0-{1,2}-3: two equal-cost first hops. *)
  let adjacency = function
    | 0 -> [ (1, 1.0); (2, 1.0) ]
    | 1 -> [ (0, 1.0); (3, 1.0) ]
    | 2 -> [ (0, 1.0); (3, 1.0) ]
    | 3 -> [ (1, 1.0); (2, 1.0) ]
    | _ -> []
  in
  let routes = Openr.Spf.compute ~source:0 ~adjacency ~nodes:[ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "both first hops" [ 1; 2 ]
    (Openr.Spf.first_hops routes 3)

let test_spf_bidirectional_check () =
  (* 0 advertises 0->1 but 1 does not advertise back: edge unusable. *)
  let adjacency = function 0 -> [ (1, 1.0) ] | _ -> [] in
  let routes = Openr.Spf.compute ~source:0 ~adjacency ~nodes:[ 0; 1 ] in
  check_bool "one-way link unusable" false (Openr.Spf.reachable routes 1)

let test_spf_prefers_cheap_path () =
  (* 0-1 metric 10; 0-2-1 metric 1+1. *)
  let adjacency = function
    | 0 -> [ (1, 10.0); (2, 1.0) ]
    | 1 -> [ (0, 10.0); (2, 1.0) ]
    | 2 -> [ (0, 1.0); (1, 1.0) ]
    | _ -> []
  in
  let routes = Openr.Spf.compute ~source:0 ~adjacency ~nodes:[ 0; 1; 2 ] in
  Alcotest.(check (option (float 1e-9))) "cheap path" (Some 2.0)
    (Openr.Spf.distance routes 1);
  Alcotest.(check (list int)) "via 2" [ 2 ] (Openr.Spf.first_hops routes 1)

(* ---------------- Network ---------------- *)

let test_flooding_converges () =
  let g = graph_of [ (0, 1); (1, 2); (2, 3); (3, 0) ] 4 in
  let net = Openr.Network.create ~seed:1 g in
  ignore (Openr.Network.converge net);
  check_bool "converged" true (Openr.Network.converged net);
  for d = 0 to 3 do
    check_int "full lsdb" 4 (Openr.Network.lsdb_size net d)
  done;
  check_bool "all pairs reachable" true
    (List.for_all
       (fun src ->
         List.for_all
           (fun dst -> Openr.Network.reachable net ~src ~dst)
           [ 0; 1; 2; 3 ])
       [ 0; 1; 2; 3 ])

let test_link_failure_reroutes () =
  let g = graph_of [ (0, 1); (1, 2); (2, 3); (3, 0) ] 4 in
  let net = Openr.Network.create ~seed:1 g in
  ignore (Openr.Network.converge net);
  Alcotest.(check (list int)) "two hops around the ring" [ 1; 3 ]
    (Openr.Network.first_hops net ~src:0 ~dst:2);
  Topology.Graph.set_link_up g 0 1 false;
  Openr.Network.link_event net 0 1 ~up:false;
  ignore (Openr.Network.converge net);
  Alcotest.(check (list int)) "non-shortest path survives" [ 3 ]
    (Openr.Network.first_hops net ~src:0 ~dst:2);
  check_bool "still reachable" true (Openr.Network.reachable net ~src:0 ~dst:2)

let test_partition_detected () =
  let g = graph_of [ (0, 1); (2, 3) ] 4 in
  let net = Openr.Network.create ~seed:1 g in
  ignore (Openr.Network.converge net);
  check_bool "cross partition unreachable" false
    (Openr.Network.reachable net ~src:0 ~dst:3);
  check_bool "same side reachable" true (Openr.Network.reachable net ~src:0 ~dst:1)

let test_capacity_weights_metrics () =
  (* Link metric is 1/capacity: a fat two-hop path beats a thin direct
     link. *)
  let g = Topology.Graph.create () in
  List.iter (fun i -> Topology.Graph.add_node g (node i)) [ 0; 1; 2 ];
  Topology.Graph.add_link ~capacity:1.0 g 0 1;
  Topology.Graph.add_link ~capacity:10.0 g 0 2;
  Topology.Graph.add_link ~capacity:10.0 g 2 1;
  let net = Openr.Network.create ~seed:2 g in
  ignore (Openr.Network.converge net);
  Alcotest.(check (list int)) "fat path wins" [ 2 ]
    (Openr.Network.first_hops net ~src:0 ~dst:1)

let test_fabric_management_reachability () =
  (* The controller host (a rack switch) reaches every device in the
     fabric over Open/R. *)
  let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let net = Openr.Network.create ~seed:3 f.Topology.Clos.graph in
  ignore (Openr.Network.converge net);
  let host = List.nth f.Topology.Clos.rsws 0 in
  List.iter
    (fun (n : Topology.Node.t) ->
      check_bool
        (Printf.sprintf "reach %s" n.Topology.Node.name)
        true
        (n.Topology.Node.id = host
         || Openr.Network.reachable net ~src:host ~dst:n.Topology.Node.id))
    (Topology.Graph.nodes f.Topology.Clos.graph)

let test_switch_agent_uses_management_plane () =
  let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let bgp_net = Bgp.Network.create ~seed:4 f.Topology.Clos.graph in
  let openr_net = Openr.Network.create ~seed:5 f.Topology.Clos.graph in
  ignore (Openr.Network.converge openr_net);
  let agent = Centralium.Switch_agent.create ~seed:6 bgp_net in
  let host = List.nth f.Topology.Clos.rsws 0 in
  Centralium.Switch_agent.attach_management_network agent openr_net
    ~controller_host:host;
  let target = List.nth f.Topology.Clos.ssws 0 in
  let rpa =
    Centralium.Apps.Min_next_hop_guard.rpa
      ~destination:Centralium.Destination.backbone_default
      ~threshold:(Centralium.Path_selection.Count 1) ~keep_fib_warm:false
  in
  Centralium.Switch_agent.set_intended agent ~device:target rpa;
  check_bool "reachable over openr" true
    (Centralium.Switch_agent.reconcile_device agent target = `Applied);
  (* Cut the target off the management plane entirely. *)
  List.iter
    (fun ((n : Topology.Node.t), _) ->
      Topology.Graph.set_link_up f.Topology.Clos.graph target n.Topology.Node.id false;
      Openr.Network.link_event openr_net target n.Topology.Node.id ~up:false)
    (Topology.Graph.all_neighbors f.Topology.Clos.graph target);
  ignore (Openr.Network.converge openr_net);
  Centralium.Switch_agent.set_intended agent ~device:target Centralium.Rpa.empty;
  check_bool "partitioned device unreachable" true
    (Centralium.Switch_agent.reconcile_device agent target = `Unreachable);
  check_bool "operator alerted" true
    (List.mem target (Centralium.Switch_agent.unexpected_unreachable agent));
  Centralium.Switch_agent.set_maintenance agent ~device:target true;
  check_bool "maintenance suppresses the alert" false
    (List.mem target (Centralium.Switch_agent.unexpected_unreachable agent))

let spf_qcheck =
  (* SPF distances satisfy the triangle inequality over direct edges. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 4 10)
        (pair (int_bound 7) (int_bound 7)))
  in
  let arb =
    QCheck.make
      ~print:(fun l ->
        String.concat ","
          (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l))
      gen
  in
  [
    QCheck.Test.make ~name:"spf distances respect edges" ~count:200 arb
      (fun raw_edges ->
        let edges =
          List.filter (fun (a, b) -> a <> b) raw_edges
          |> List.map (fun (a, b) -> (min a b, max a b))
          |> List.sort_uniq compare
        in
        let adjacency n =
          List.concat_map
            (fun (a, b) ->
              if a = n then [ (b, 1.0) ]
              else if b = n then [ (a, 1.0) ]
              else [])
            edges
        in
        let routes =
          Openr.Spf.compute ~source:0 ~adjacency ~nodes:(List.init 8 Fun.id)
        in
        List.for_all
          (fun (a, b) ->
            match (Openr.Spf.distance routes a, Openr.Spf.distance routes b) with
            | Some da, Some db -> Float.abs (da -. db) <= 1.0 +. 1e-9
            | None, None -> true
            | Some _, None | None, Some _ ->
              false (* an edge between reachable and unreachable is absurd *))
          edges);
  ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "openr"
    [
      ("lsa", [ quick "newer" test_lsa_newer ]);
      ( "spf",
        [
          quick "line" test_spf_line;
          quick "ecmp" test_spf_ecmp;
          quick "bidirectional check" test_spf_bidirectional_check;
          quick "prefers cheap path" test_spf_prefers_cheap_path;
        ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false) spf_qcheck );
      ( "network",
        [
          quick "flooding converges" test_flooding_converges;
          quick "link failure reroutes" test_link_failure_reroutes;
          quick "partition detected" test_partition_detected;
          quick "capacity metrics" test_capacity_weights_metrics;
          quick "fabric reachability" test_fabric_management_reachability;
          quick "switch agent integration" test_switch_agent_uses_management_plane;
        ] );
    ]
