(* Tests for lib/dataplane: traffic propagation, metrics, next-hop groups. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let entries list =
  Bgp.Speaker.Entries
    (List.map
       (fun (next_hop, weight) -> { Bgp.Speaker.next_hop; session = 0; weight })
       list)

let fib_of assoc =
  let table = Hashtbl.create 8 in
  List.iter (fun (d, s) -> Hashtbl.replace table d s) assoc;
  Hashtbl.find_opt table

(* ---------------- Traffic ---------------- *)

let test_traffic_delivery () =
  (* 0 -> 1 -> 2(local) *)
  let lookup =
    fib_of [ (0, entries [ (1, 1) ]); (1, entries [ (2, 1) ]); (2, Bgp.Speaker.Local) ]
  in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 4.0) ] () in
  check_float "delivered" 4.0 r.Dataplane.Traffic.delivered;
  check_float "dropped" 0.0 r.Dataplane.Traffic.dropped;
  check_float "looped" 0.0 r.Dataplane.Traffic.looped;
  check_float "transit at 1" 4.0
    (Option.value (Hashtbl.find_opt r.Dataplane.Traffic.transit 1) ~default:0.0)

let test_traffic_weighted_split () =
  (* 0 splits 3:1 between 1 and 2, both local. *)
  let lookup =
    fib_of
      [ (0, entries [ (1, 3); (2, 1) ]); (1, Bgp.Speaker.Local);
        (2, Bgp.Speaker.Local) ]
  in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 8.0) ] () in
  check_float "to 1" 6.0
    (Option.value (Hashtbl.find_opt r.Dataplane.Traffic.link_load (0, 1)) ~default:0.0);
  check_float "to 2" 2.0
    (Option.value (Hashtbl.find_opt r.Dataplane.Traffic.link_load (0, 2)) ~default:0.0);
  check_float "delivered at 1" 6.0
    (Option.value (Hashtbl.find_opt r.Dataplane.Traffic.delivered_at 1) ~default:0.0)

let test_traffic_blackhole () =
  let lookup = fib_of [ (0, entries [ (1, 1) ]) ] in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 2.0) ] () in
  check_float "dropped at 1" 2.0 r.Dataplane.Traffic.dropped;
  check_float "nothing delivered" 0.0 r.Dataplane.Traffic.delivered

let test_traffic_loop_detected () =
  (* 0 -> 1 -> 0: circulating volume classified as looped. *)
  let lookup = fib_of [ (0, entries [ (1, 1) ]); (1, entries [ (0, 1) ]) ] in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 1.0) ] () in
  check_float "looped" 1.0 r.Dataplane.Traffic.looped;
  check_float "delivered" 0.0 r.Dataplane.Traffic.delivered

let test_traffic_partial_loop () =
  (* One source feeds a pure loop, the other a working path. *)
  let lookup =
    fib_of
      [ (0, entries [ (1, 1) ]); (1, entries [ (0, 1) ]);
        (5, entries [ (6, 1) ]); (6, Bgp.Speaker.Local) ]
  in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 1.0); (5, 1.0) ] () in
  check_float "delivered" 1.0 r.Dataplane.Traffic.delivered;
  check_float "looped" 1.0 r.Dataplane.Traffic.looped

let test_traffic_leaky_loop_drains () =
  (* A loop with an exit: the fluid model drains it almost entirely within
     the round budget (each pass leaks half), like TTL-bounded packets. *)
  let lookup =
    fib_of
      [ (0, entries [ (1, 1); (2, 1) ]); (1, entries [ (0, 1) ]);
        (2, Bgp.Speaker.Local) ]
  in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 2.0) ] () in
  check_bool "almost all delivered" true (r.Dataplane.Traffic.delivered > 1.9);
  check_bool "loop inflates transit" true
    (Option.value (Hashtbl.find_opt r.Dataplane.Traffic.transit 1) ~default:0.0
     > 1.0)

(* ---------------- Metrics ---------------- *)

let test_funneling_metric () =
  let lookup =
    fib_of
      [ (0, entries [ (1, 1) ]); (3, entries [ (1, 1) ]);
        (1, entries [ (9, 1) ]); (9, Bgp.Speaker.Local) ]
  in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 1.0); (3, 1.0) ] () in
  check_float "all through 1" 1.0
    (Dataplane.Metrics.funneling r ~members:[ 1; 2 ] ~total:2.0);
  check_float "share of 2 is 0" 0.0
    (Dataplane.Metrics.transit_share r ~device:2 ~total:2.0)

let test_loss_fractions () =
  let lookup = fib_of [ (0, entries [ (1, 1) ]) ] in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 4.0) ] () in
  check_float "loss" 1.0 (Dataplane.Metrics.loss_fraction r ~total:4.0);
  check_float "blackholed" 1.0 (Dataplane.Metrics.blackholed_fraction r ~total:4.0);
  check_float "looped" 0.0 (Dataplane.Metrics.looped_fraction r ~total:4.0)

let test_find_loops () =
  let lookup =
    fib_of
      [ (0, entries [ (1, 1) ]); (1, entries [ (2, 1) ]); (2, entries [ (1, 1) ]) ]
  in
  let loops =
    Dataplane.Metrics.find_forwarding_loops ~lookup ~devices:[ 0; 1; 2 ]
  in
  check_int "one loop" 1 (List.length loops);
  (match loops with
   | [ cycle ] ->
     Alcotest.(check (list int)) "cycle 1-2" [ 1; 2 ] (List.sort Int.compare cycle)
   | _ -> Alcotest.fail "expected one cycle");
  let acyclic = fib_of [ (0, entries [ (1, 1) ]); (1, Bgp.Speaker.Local) ] in
  check_int "acyclic" 0
    (List.length
       (Dataplane.Metrics.find_forwarding_loops ~lookup:acyclic ~devices:[ 0; 1 ]))

let test_max_link_utilization () =
  let lookup =
    fib_of [ (0, entries [ (1, 1); (2, 1) ]); (1, Bgp.Speaker.Local);
             (2, Bgp.Speaker.Local) ]
  in
  let r = Dataplane.Traffic.route ~lookup ~demands:[ (0, 10.0) ] () in
  let capacity (a, b) = if (a, b) = (0, 1) then 10.0 else 2.0 in
  check_float "max util" 2.5 (Dataplane.Metrics.max_link_utilization r ~capacity)

(* ---------------- Nhg ---------------- *)

let e nh session weight = { Bgp.Speaker.next_hop = nh; session; weight }

let test_nhg_canonicalization () =
  let a = Dataplane.Nhg.of_entries [ e 1 0 2; e 2 0 4 ] in
  let b = Dataplane.Nhg.of_entries [ e 2 0 2; e 1 0 1 ] in
  check_bool "gcd + order normalized" true (Dataplane.Nhg.equal a b);
  let c = Dataplane.Nhg.of_entries [ e 1 0 1; e 2 0 3 ] in
  check_bool "different ratios differ" false (Dataplane.Nhg.equal a c);
  let d = Dataplane.Nhg.of_entries [ e 1 1 2; e 2 0 4 ] in
  check_bool "sessions distinguish" false (Dataplane.Nhg.equal a d)

let test_nhg_distinct_count () =
  let p i = Net.Prefix.v4 10 i 0 0 24 in
  let fib =
    [
      (p 1, entries [ (1, 1); (2, 1) ]);
      (p 2, entries [ (2, 1); (1, 1) ]);  (* same group *)
      (p 3, entries [ (1, 1) ]);          (* different *)
      (p 4, Bgp.Speaker.Local);           (* no group *)
    ]
  in
  check_int "two distinct" 2 (Dataplane.Nhg.distinct_count fib)

let test_nhg_timeline_from_trace () =
  let trace = Bgp.Trace.create () in
  let p1 = Net.Prefix.v4 10 1 0 0 24 and p2 = Net.Prefix.v4 10 2 0 0 24 in
  let fc time prefix state =
    Bgp.Trace.record trace
      (Bgp.Trace.Fib_change { time; device = 7; prefix; state })
  in
  fc 1.0 p1 (Some (entries [ (1, 1) ]));
  fc 2.0 p2 (Some (entries [ (2, 1) ]));  (* now 2 distinct groups *)
  fc 3.0 p2 (Some (entries [ (1, 1) ]));  (* collapses to 1 *)
  fc 4.0 p1 None;
  check_int "max" 2 (Dataplane.Nhg.max_on_device trace ~device:7);
  let timeline = Dataplane.Nhg.timeline_on_device trace ~device:7 in
  Alcotest.(check (list int)) "counts" [ 1; 2; 1; 1 ] (List.map snd timeline)

let test_nhg_other_device_ignored () =
  let trace = Bgp.Trace.create () in
  Bgp.Trace.record trace
    (Bgp.Trace.Fib_change
       { time = 1.0; device = 3; prefix = Net.Prefix.default_v4;
         state = Some (entries [ (1, 1) ]) });
  check_int "device filter" 0 (Dataplane.Nhg.max_on_device trace ~device:7)

(* ---------------- Flowsim ---------------- *)

let test_flowsim_delivery () =
  let lookup =
    fib_of [ (0, entries [ (1, 1) ]); (1, entries [ (2, 1) ]); (2, Bgp.Speaker.Local) ]
  in
  let flows = List.init 100 (fun i -> (0, i)) in
  let r = Dataplane.Flowsim.run ~lookup ~flows () in
  check_int "all delivered" 100 r.Dataplane.Flowsim.delivered;
  check_int "no drops" 0 (r.Dataplane.Flowsim.dropped_no_route + r.Dataplane.Flowsim.dropped_ttl);
  Alcotest.(check (list (pair int int))) "all took 2 hops" [ (2, 100) ]
    r.Dataplane.Flowsim.hop_counts

let test_flowsim_weighted_hashing () =
  (* Weights 3:1 over many flows: the hash split approximates the ratio. *)
  let n = 4000 in
  let to_1 = ref 0 in
  for flow = 0 to n - 1 do
    let entry =
      Dataplane.Flowsim.next_hop_of ~flow ~device:0 [ e 1 0 3; e 2 0 1 ]
    in
    if entry.Bgp.Speaker.next_hop = 1 then incr to_1
  done;
  let share = float_of_int !to_1 /. float_of_int n in
  check_bool "split near 3:1" true (Float.abs (share -. 0.75) < 0.05)

let test_flowsim_deterministic_paths () =
  let lookup =
    fib_of
      [ (0, entries [ (1, 1); (2, 1) ]); (1, Bgp.Speaker.Local);
        (2, Bgp.Speaker.Local) ]
  in
  let flows = List.init 50 (fun i -> (0, i)) in
  let a = Dataplane.Flowsim.run ~lookup ~flows () in
  let b = Dataplane.Flowsim.run ~lookup ~flows () in
  check_bool "same outcome every run" true (a = b)

let test_flowsim_ttl_drops_in_loop () =
  (* 0 -> 1 -> 0 forever: every flow dies of TTL, none by no-route. *)
  let lookup = fib_of [ (0, entries [ (1, 1) ]); (1, entries [ (0, 1) ]) ] in
  let flows = List.init 20 (fun i -> (0, i)) in
  let r = Dataplane.Flowsim.run ~ttl:16 ~lookup ~flows () in
  check_int "all ttl-dropped" 20 r.Dataplane.Flowsim.dropped_ttl;
  check_int "none delivered" 0 r.Dataplane.Flowsim.delivered;
  check_bool "loss is total" true (Dataplane.Flowsim.loss_fraction r = 1.0)

let test_flowsim_partial_loop_loses_bouncers () =
  (* Half-exit loop: flows that keep hashing into the loop side die of
     TTL; with deterministic per-(flow, device) hashing a flow either
     exits immediately or bounces forever. *)
  let lookup =
    fib_of
      [ (0, entries [ (1, 1); (2, 1) ]); (1, entries [ (0, 1) ]);
        (2, Bgp.Speaker.Local) ]
  in
  let flows = List.init 200 (fun i -> (0, i)) in
  let r = Dataplane.Flowsim.run ~ttl:32 ~lookup ~flows () in
  check_bool "some delivered" true (r.Dataplane.Flowsim.delivered > 50);
  check_bool "some ttl-dropped" true (r.Dataplane.Flowsim.dropped_ttl > 20);
  check_int "accounted" 200
    (r.Dataplane.Flowsim.delivered + r.Dataplane.Flowsim.dropped_ttl
     + r.Dataplane.Flowsim.dropped_no_route)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dataplane"
    [
      ( "traffic",
        [
          quick "delivery" test_traffic_delivery;
          quick "weighted split" test_traffic_weighted_split;
          quick "blackhole" test_traffic_blackhole;
          quick "loop detected" test_traffic_loop_detected;
          quick "partial loop" test_traffic_partial_loop;
          quick "leaky loop drains" test_traffic_leaky_loop_drains;
        ] );
      ( "metrics",
        [
          quick "funneling" test_funneling_metric;
          quick "loss fractions" test_loss_fractions;
          quick "find loops" test_find_loops;
          quick "max link utilization" test_max_link_utilization;
        ] );
      ( "flowsim",
        [
          quick "delivery" test_flowsim_delivery;
          quick "weighted hashing" test_flowsim_weighted_hashing;
          quick "deterministic" test_flowsim_deterministic_paths;
          quick "ttl drops in loop" test_flowsim_ttl_drops_in_loop;
          quick "partial loop" test_flowsim_partial_loop_loses_bouncers;
        ] );
      ( "nhg",
        [
          quick "canonicalization" test_nhg_canonicalization;
          quick "distinct count" test_nhg_distinct_count;
          quick "timeline from trace" test_nhg_timeline_from_trace;
          quick "other device ignored" test_nhg_other_device_ignored;
        ] );
    ]
