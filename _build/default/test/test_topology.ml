(* Tests for lib/topology: graph operations, Clos builders, migration
   taxonomy. *)

open Topology

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node id layer = Node.make ~id ~name:(Printf.sprintf "n%d" id) ~layer ()

(* ---------------- Graph ---------------- *)

let test_graph_basics () =
  let g = Graph.create () in
  Graph.add_node g (node 0 Node.Rsw);
  Graph.add_node g (node 1 Node.Fsw);
  Graph.add_link g 0 1;
  check_int "nodes" 2 (Graph.node_count g);
  check_int "links" 1 (List.length (Graph.links g));
  check_int "neighbors" 1 (List.length (Graph.neighbors g 0));
  check_bool "link found" true (Graph.find_link g 1 0 <> None)

let test_graph_duplicate_rejected () =
  let g = Graph.create () in
  Graph.add_node g (node 0 Node.Rsw);
  Graph.add_node g (node 1 Node.Fsw);
  Graph.add_link g 0 1;
  check_bool "dup node" true
    (try
       Graph.add_node g (node 0 Node.Rsw);
       false
     with Invalid_argument _ -> true);
  check_bool "dup link" true
    (try
       Graph.add_link g 1 0;
       false
     with Invalid_argument _ -> true);
  check_bool "self loop" true
    (try
       Graph.add_link g 0 0;
       false
     with Invalid_argument _ -> true)

let test_graph_link_state () =
  let g = Graph.create () in
  Graph.add_node g (node 0 Node.Rsw);
  Graph.add_node g (node 1 Node.Fsw);
  Graph.add_link g 0 1;
  Graph.set_link_up g 0 1 false;
  check_int "no live neighbors" 0 (List.length (Graph.neighbors g 0));
  check_int "still physically there" 1 (List.length (Graph.all_neighbors g 0));
  check_int "degree up" 0 (Graph.degree_up g 0);
  Graph.set_link_up g 0 1 true;
  check_int "back up" 1 (Graph.degree_up g 0)

let test_graph_remove_node () =
  let g = Graph.create () in
  List.iter (fun i -> Graph.add_node g (node i Node.Ssw)) [ 0; 1; 2 ];
  Graph.add_link g 0 1;
  Graph.add_link g 1 2;
  Graph.remove_node g 1;
  check_int "nodes" 2 (Graph.node_count g);
  check_int "links gone" 0 (List.length (Graph.links g));
  check_int "neighbor cleaned" 0 (List.length (Graph.all_neighbors g 0))

let test_graph_by_layer () =
  let g = Graph.create () in
  Graph.add_node g (node 0 Node.Rsw);
  Graph.add_node g (node 1 Node.Fsw);
  Graph.add_node g (node 2 Node.Fsw);
  check_int "fsw count" 2 (List.length (Graph.by_layer g Node.Fsw));
  check_int "layers" 2 (List.length (Graph.layers g))

(* ---------------- Clos: fabric ---------------- *)

let test_fabric_counts () =
  let f = Clos.fabric () in
  (* defaults: 4 pods x 4 rsw, 4 fsw; 4 planes x 4 ssw; 2 grids; 2 fauu; 4 eb *)
  check_int "rsws" 16 (List.length f.Clos.rsws);
  check_int "fsws" 16 (List.length f.Clos.fsws);
  check_int "ssws" 16 (List.length f.Clos.ssws);
  check_int "fadus" 8 (List.length f.Clos.fadus);
  check_int "fauus" 4 (List.length f.Clos.fauus);
  check_int "ebs" 4 (List.length f.Clos.ebs)

let test_fabric_wiring_invariants () =
  let f = Clos.fabric () in
  let g = f.Clos.graph in
  (* Every RSW connects to exactly the FSWs of its pod (4). *)
  List.iter
    (fun rsw ->
      let neighbors = Graph.neighbors g rsw in
      check_int "rsw degree" 4 (List.length neighbors);
      let pod = (Graph.node g rsw).Node.pod in
      List.iter
        (fun ((n : Node.t), _) ->
          check_bool "same pod" true (n.Node.pod = pod);
          check_bool "fsw layer" true (Node.layer_equal n.Node.layer Node.Fsw))
        neighbors)
    f.Clos.rsws;
  (* Every SSW connects to one FADU in every grid (Appendix A.1). *)
  List.iter
    (fun ssw ->
      let fadu_neighbors =
        List.filter
          (fun ((n : Node.t), _) -> Node.layer_equal n.Node.layer Node.Fadu)
          (Graph.neighbors g ssw)
      in
      check_int "one fadu per grid" 2 (List.length fadu_neighbors);
      let grids =
        List.sort_uniq Int.compare
          (List.map (fun ((n : Node.t), _) -> n.Node.grid) fadu_neighbors)
      in
      check_int "distinct grids" 2 (List.length grids))
    f.Clos.ssws

let test_fabric_connected_bottom_to_top () =
  let f = Clos.fabric () in
  let g = f.Clos.graph in
  (* BFS from an RSW must reach an EB. *)
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  (match f.Clos.rsws with
   | first :: _ -> Queue.add first queue
   | [] -> Alcotest.fail "no rsws");
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      List.iter
        (fun ((n : Node.t), _) -> Queue.add n.Node.id queue)
        (Graph.neighbors g v)
    end
  done;
  List.iter
    (fun eb -> check_bool "eb reachable" true (Hashtbl.mem visited eb))
    f.Clos.ebs

(* ---------------- Clos: scenario topologies ---------------- *)

let test_expansion_paths () =
  let x = Clos.expansion () in
  let g = x.Clos.xgraph in
  (* SSWs reach the backbone through FAv1 -> Edge initially. *)
  List.iter
    (fun ssw ->
      let neighbors = Graph.neighbors g ssw in
      check_bool "ssw sees fav1" true
        (List.exists
           (fun ((n : Node.t), _) -> Node.layer_equal n.Node.layer Node.Fa)
           neighbors))
    x.Clos.xssws;
  check_int "no fav2 initially" 0 (List.length x.Clos.fav2);
  let fav2 = Clos.add_fav2 x in
  check_int "one fav2" 1 (List.length x.Clos.fav2);
  (* New FAv2 connects to every SSW and the backbone. *)
  check_int "fav2 degree" (List.length x.Clos.xssws + 1)
    (List.length (Graph.neighbors g fav2))

let test_decommission_wiring () =
  let d = Clos.decommission ~planes:3 ~grids:2 ~per:4 () in
  let g = d.Clos.dgraph in
  (* SSW-n connects only to FADU-n in every grid. *)
  List.iteri
    (fun _ ssws ->
      List.iteri
        (fun n ssw ->
          let fadus =
            List.filter
              (fun ((x : Node.t), _) -> Node.layer_equal x.Node.layer Node.Fadu)
              (Graph.neighbors g ssw)
          in
          check_int "one fadu per grid" 2 (List.length fadus);
          List.iter
            (fun ((fadu : Node.t), _) ->
              let expected = List.map (fun grid -> List.nth grid n) d.Clos.grids in
              check_bool "numbered wiring" true (List.mem fadu.Node.id expected))
            fadus)
        ssws)
    d.Clos.planes;
  check_int "numbered ssws" 3 (List.length (Clos.ssws_numbered d 1));
  check_int "numbered fadus" 2 (List.length (Clos.fadus_numbered d 1))

let test_wcmp_topology_sessions () =
  let w = Clos.wcmp_convergence () in
  check_int "ebs" 8 (List.length w.Clos.ebs);
  check_int "uus" 4 (List.length w.Clos.uus);
  (* Each UU-DU pair has two sessions. *)
  List.iter
    (fun du ->
      List.iter
        (fun uu ->
          match Graph.find_link w.Clos.wgraph du uu with
          | Some link -> check_int "two sessions" 2 link.Graph.sessions
          | None -> Alcotest.fail "missing uu-du link")
        w.Clos.uus)
    w.Clos.dus

let test_mixed_dissemination_edges () =
  let m = Clos.mixed_dissemination () in
  let g = m.Clos.mgraph in
  let has a b = Graph.find_link g a b <> None in
  let r = m.Clos.r in
  check_bool "origin-r1" true (has m.Clos.origin r.(1));
  check_bool "r1-r2" true (has r.(1) r.(2));
  check_bool "r2-r6" true (has r.(2) r.(6));
  check_bool "r3-r4" true (has r.(3) r.(4));
  check_bool "r4-r5" true (has r.(4) r.(5));
  check_bool "r5-r6" true (has r.(5) r.(6));
  check_bool "no r2-r5" false (has r.(2) r.(5))

let test_sev_bad_fa_isolated_from_backbone () =
  let s = Clos.sev () in
  let g = s.Clos.sgraph in
  check_bool "bad fa has no backbone link" true
    (Graph.find_link g s.Clos.bad_fa s.Clos.sbackbone = None);
  List.iter
    (fun fa ->
      if fa <> s.Clos.bad_fa then
        check_bool "good fa wired" true
          (Graph.find_link g fa s.Clos.sbackbone <> None))
    s.Clos.sfas

let test_fabric_invariants_across_sizes () =
  (* The wiring invariants must hold for any fabric dimensions. *)
  List.iter
    (fun (pods, rsws, fsws, ssws, grids, fauus, ebs) ->
      let f =
        Clos.fabric ~pods ~rsws_per_pod:rsws ~fsws_per_pod:fsws
          ~ssws_per_plane:ssws ~grids ~fauus_per_grid:fauus ~ebs ()
      in
      let g = f.Clos.graph in
      check_int "rsw count" (pods * rsws) (List.length f.Clos.rsws);
      check_int "ssw count" (fsws * ssws) (List.length f.Clos.ssws);
      check_int "fadu count" (grids * ssws) (List.length f.Clos.fadus);
      (* FSW i connects to exactly the SSWs of plane i. *)
      List.iter
        (fun fsw ->
          let plane = (Graph.node g fsw).Node.plane in
          let ssw_neighbors =
            List.filter
              (fun ((n : Node.t), _) -> Node.layer_equal n.Node.layer Node.Ssw)
              (Graph.neighbors g fsw)
          in
          check_int "fsw uplink count" ssws (List.length ssw_neighbors);
          List.iter
            (fun ((n : Node.t), _) -> check_int "same plane" plane n.Node.plane)
            ssw_neighbors)
        f.Clos.fsws;
      (* Every FAUU connects to every EB. *)
      List.iter
        (fun fauu ->
          let eb_neighbors =
            List.filter
              (fun ((n : Node.t), _) -> Node.layer_equal n.Node.layer Node.Eb)
              (Graph.neighbors g fauu)
          in
          check_int "fauu-eb full mesh" ebs (List.length eb_neighbors))
        f.Clos.fauus)
    [ (1, 1, 1, 1, 1, 1, 1); (2, 3, 2, 3, 2, 2, 3); (3, 2, 4, 2, 3, 1, 2) ]

(* ---------------- Migration ---------------- *)

let test_table1_rows () =
  check_int "five categories" 5 (List.length Migration.table1);
  List.iter
    (fun row ->
      check_bool "duration positive" true (row.Migration.typical_duration_days > 0.0))
    Migration.table1;
  (* Maintenance drain is the only daily one and the shortest. *)
  let drain =
    List.find
      (fun r -> r.Migration.category = Migration.Traffic_drain_for_maintenance)
      Migration.table1
  in
  check_bool "drain is daily" true (drain.Migration.frequency = Migration.Daily);
  check_bool "drain is shortest" true
    (List.for_all
       (fun r -> r.Migration.typical_duration_days >= drain.Migration.typical_duration_days)
       Migration.table1)

let total counts = List.fold_left (fun acc (_, n) -> acc + n) 0 counts

let test_fleet_scale () =
  (* Fleet-wide migrations involve tens of thousands of switches. *)
  let rng = Dsim.Rng.create 1 in
  let counts =
    Migration.switches_involved ~rng Migration.default_fleet
      Migration.Routing_system_evolution
  in
  check_bool "tens of thousands" true (total counts > 10_000)

let test_drain_is_hundreds () =
  let rng = Dsim.Rng.create 1 in
  let counts =
    Migration.switches_involved ~rng Migration.default_fleet
      Migration.Traffic_drain_for_maintenance
  in
  let n = total counts in
  check_bool "hundreds" true (n >= 100 && n < 2_000)

let test_lower_layers_bigger () =
  (* Figure 3: migrations involve more switches at lower layers. *)
  let rng = Dsim.Rng.create 2 in
  List.iter
    (fun category ->
      let avg =
        Migration.average_switches_per_layer ~samples:20 ~rng
          Migration.default_fleet category
      in
      let value layer =
        match List.assoc_opt layer avg with Some v -> v | None -> 0.0
      in
      if category <> Migration.Traffic_drain_for_maintenance then
        check_bool
          (Printf.sprintf "rsw+fsw >= fadu+fauu (%s)"
             (Migration.category_label category))
          true
          (value Node.Rsw +. value Node.Fsw >= value Node.Fadu +. value Node.Fauu))
    Migration.all_categories

let test_sub_dc_smaller_than_fleet () =
  let rng = Dsim.Rng.create 3 in
  let fleet_total =
    total
      (Migration.switches_involved ~rng Migration.default_fleet
         Migration.Routing_system_evolution)
  in
  let sub_total =
    total
      (Migration.switches_involved ~rng Migration.default_fleet
         Migration.Differential_traffic_distribution)
  in
  check_bool "sub-DC smaller" true (sub_total < fleet_total)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "topology"
    [
      ( "graph",
        [
          quick "basics" test_graph_basics;
          quick "duplicates rejected" test_graph_duplicate_rejected;
          quick "link state" test_graph_link_state;
          quick "remove node" test_graph_remove_node;
          quick "by layer" test_graph_by_layer;
        ] );
      ( "clos",
        [
          quick "fabric counts" test_fabric_counts;
          quick "fabric wiring invariants" test_fabric_wiring_invariants;
          quick "fabric connectivity" test_fabric_connected_bottom_to_top;
          quick "expansion paths" test_expansion_paths;
          quick "decommission wiring" test_decommission_wiring;
          quick "wcmp sessions" test_wcmp_topology_sessions;
          quick "mixed dissemination edges" test_mixed_dissemination_edges;
          quick "sev bad fa" test_sev_bad_fa_isolated_from_backbone;
          quick "invariants across sizes" test_fabric_invariants_across_sizes;
        ] );
      ( "migration",
        [
          quick "table1 rows" test_table1_rows;
          quick "fleet scale" test_fleet_scale;
          quick "drain is hundreds" test_drain_is_hundreds;
          quick "lower layers bigger" test_lower_layers_bigger;
          quick "sub-dc smaller" test_sub_dc_smaller_than_fleet;
        ] );
    ]
