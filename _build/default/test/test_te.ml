(* Tests for lib/te: max-flow and the min-max-utilization TE solver. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-4))

(* ---------------- Maxflow ---------------- *)

let test_maxflow_single_edge () =
  let mf = Te.Maxflow.create ~nodes:2 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:5.0;
  check_float "flow" 5.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:1)

let test_maxflow_bottleneck () =
  (* 0 -> 1 -> 2 with capacities 10 and 3. *)
  let mf = Te.Maxflow.create ~nodes:3 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:10.0;
  Te.Maxflow.add_edge mf ~src:1 ~dst:2 ~capacity:3.0;
  check_float "bottleneck" 3.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:2)

let test_maxflow_parallel_paths () =
  (* Diamond: 0 -> {1, 2} -> 3 with capacities 2 and 3. *)
  let mf = Te.Maxflow.create ~nodes:4 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:2.0;
  Te.Maxflow.add_edge mf ~src:0 ~dst:2 ~capacity:3.0;
  Te.Maxflow.add_edge mf ~src:1 ~dst:3 ~capacity:2.0;
  Te.Maxflow.add_edge mf ~src:2 ~dst:3 ~capacity:3.0;
  check_float "sum" 5.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:3)

let test_maxflow_classic () =
  (* A classic augmenting-path trap needing the residual edge. *)
  let mf = Te.Maxflow.create ~nodes:4 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:1.0;
  Te.Maxflow.add_edge mf ~src:0 ~dst:2 ~capacity:1.0;
  Te.Maxflow.add_edge mf ~src:1 ~dst:2 ~capacity:1.0;
  Te.Maxflow.add_edge mf ~src:1 ~dst:3 ~capacity:1.0;
  Te.Maxflow.add_edge mf ~src:2 ~dst:3 ~capacity:1.0;
  check_float "classic" 2.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:3)

let test_maxflow_disconnected () =
  let mf = Te.Maxflow.create ~nodes:3 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:1.0;
  check_float "no path" 0.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:2)

let test_maxflow_rerun_resets () =
  let mf = Te.Maxflow.create ~nodes:2 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:4.0;
  check_float "first" 4.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:1);
  check_float "second identical" 4.0 (Te.Maxflow.max_flow mf ~source:0 ~sink:1)

let test_maxflow_flow_extraction () =
  let mf = Te.Maxflow.create ~nodes:4 in
  Te.Maxflow.add_edge mf ~src:0 ~dst:1 ~capacity:2.0;
  Te.Maxflow.add_edge mf ~src:0 ~dst:2 ~capacity:3.0;
  Te.Maxflow.add_edge mf ~src:1 ~dst:3 ~capacity:2.0;
  Te.Maxflow.add_edge mf ~src:2 ~dst:3 ~capacity:3.0;
  ignore (Te.Maxflow.max_flow mf ~source:0 ~sink:3);
  check_float "flow on 0-1" 2.0 (Te.Maxflow.flow_on mf ~src:0 ~dst:1);
  check_float "flow on 0-2" 3.0 (Te.Maxflow.flow_on mf ~src:0 ~dst:2);
  let out = Te.Maxflow.out_flows mf 0 in
  Alcotest.(check int) "two outflows" 2 (List.length out)

(* ---------------- Solver ---------------- *)

(* Asymmetric diamond: source 0, destination 3, uplinks 2.0 and 6.0. ECMP
   splits demand evenly and overloads the thin link; optimal WCMP splits
   1:3. *)
let asymmetric_diamond demand =
  {
    Te.Solver.node_count = 4;
    edges = [ (0, 1, 2.0); (0, 2, 6.0); (1, 3, 2.0); (2, 3, 6.0) ];
    demands = [ (0, demand) ];
    destination = 3;
  }

let test_solver_ecmp_overloads_thin_link () =
  let inst = asymmetric_diamond 4.0 in
  let u = Te.Solver.max_utilization inst (Te.Solver.ecmp_weights inst) in
  check_float "ecmp max util" 1.0 u (* 2.0 on the 2.0-capacity link *)

let test_solver_optimal_balances () =
  let inst = asymmetric_diamond 4.0 in
  let u, weights = Te.Solver.optimal inst in
  check_bool "optimal close to 0.5" true (Float.abs (u -. 0.5) < 0.01);
  let u_check = Te.Solver.max_utilization inst weights in
  check_bool "weights attain it" true (u_check <= u +. 1e-6)

let test_solver_ordering_holds () =
  (* ideal <= quantized <= ecmp across several demand levels. *)
  List.iter
    (fun demand ->
      let inst = asymmetric_diamond demand in
      let u_opt, w_opt = Te.Solver.optimal inst in
      let u_quant =
        Te.Solver.max_utilization inst (Te.Solver.quantize w_opt)
      in
      let u_ecmp = Te.Solver.max_utilization inst (Te.Solver.ecmp_weights inst) in
      check_bool "opt <= quant" true (u_opt <= u_quant +. 1e-6);
      check_bool "quant <= ecmp" true (u_quant <= u_ecmp +. 1e-6))
    [ 1.0; 2.0; 4.0; 7.9 ]

let test_solver_effective_capacity () =
  let inst = asymmetric_diamond 4.0 in
  let u_opt, _ = Te.Solver.optimal inst in
  let cap = Te.Solver.effective_capacity inst ~max_util:u_opt in
  check_bool "optimal effective capacity near 8" true (Float.abs (cap -. 8.0) < 0.2);
  let u_ecmp = Te.Solver.max_utilization inst (Te.Solver.ecmp_weights inst) in
  let cap_ecmp = Te.Solver.effective_capacity inst ~max_util:u_ecmp in
  check_bool "ecmp effective capacity near 4" true (Float.abs (cap_ecmp -. 4.0) < 0.2)

let test_solver_quantize_ratios () =
  (* At link-bandwidth granularity (64 levels) ratios survive rounding. *)
  let weights _ = [ (1, 0.25); (2, 0.75) ] in
  match Te.Solver.quantize ~levels:64 weights 0 with
  | [ (1, a); (2, b) ] ->
    check_bool "ratio preserved" true (Float.abs ((b /. a) -. 3.0) < 0.1)
  | _ -> Alcotest.fail "expected two weights"

let test_solver_quantize_drops_tiny () =
  let weights _ = [ (1, 0.001); (2, 1.0) ] in
  match Te.Solver.quantize ~levels:8 weights 0 with
  | [ (2, _) ] -> ()
  | other ->
    Alcotest.fail
      (Printf.sprintf "expected tiny weight dropped, got %d entries"
         (List.length other))

let test_solver_multi_source () =
  (* Two sources with different demands; a shared bottleneck. *)
  let inst =
    {
      Te.Solver.node_count = 4;
      edges = [ (0, 2, 4.0); (1, 2, 4.0); (2, 3, 6.0) ];
      demands = [ (0, 2.0); (1, 4.0) ];
      destination = 3;
    }
  in
  let u, _ = Te.Solver.optimal inst in
  check_float "bottleneck util" 1.0 u

let test_solver_infeasible_direction () =
  let inst =
    {
      Te.Solver.node_count = 2;
      edges = [];
      demands = [ (0, 1.0) ];
      destination = 1;
    }
  in
  check_bool "unreachable raises" true
    (try
       ignore (Te.Solver.optimal inst);
       false
     with Failure _ -> true)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "te"
    [
      ( "maxflow",
        [
          quick "single edge" test_maxflow_single_edge;
          quick "bottleneck" test_maxflow_bottleneck;
          quick "parallel paths" test_maxflow_parallel_paths;
          quick "classic residual" test_maxflow_classic;
          quick "disconnected" test_maxflow_disconnected;
          quick "rerun resets" test_maxflow_rerun_resets;
          quick "flow extraction" test_maxflow_flow_extraction;
        ] );
      ( "solver",
        [
          quick "ecmp overloads thin link" test_solver_ecmp_overloads_thin_link;
          quick "optimal balances" test_solver_optimal_balances;
          quick "ordering holds" test_solver_ordering_holds;
          quick "effective capacity" test_solver_effective_capacity;
          quick "quantize ratios" test_solver_quantize_ratios;
          quick "quantize drops tiny" test_solver_quantize_drops_tiny;
          quick "multi source" test_solver_multi_source;
          quick "infeasible" test_solver_infeasible_direction;
        ] );
    ]
