(* Fleet consistency (Section 5.1): the contrasting intended/current views
   detect stragglers, gate a slow roll, and re-converge re-provisioned
   switches; NSDB subscriptions stream the state changes.

   Run with: dune exec examples/fleet_consistency.exe *)

let pf = Printf.printf

let () =
  let fabric = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let net = Bgp.Network.create ~seed:8 fabric.Topology.Clos.graph in
  List.iter
    (fun eb ->
      Bgp.Network.originate net eb Net.Prefix.default_v4
        (Net.Attr.make
           ~communities:
             (Net.Community.Set.singleton
                Net.Community.Well_known.backbone_default_route)
           ()))
    fabric.Topology.Clos.ebs;
  ignore (Bgp.Network.converge net);
  let controller = Centralium.Controller.create ~seed:9 net in
  let agent = Centralium.Controller.agent controller in

  (* Subscribe to the agent's intended view: every RPA write streams out,
     the pub/sub pattern all Centralium services share. *)
  let events = ref 0 in
  let _sub =
    Centralium.Nsdb.subscribe
      (Centralium.Service.intended (Centralium.Switch_agent.service agent))
      ~path:"devices/*/rpa"
      (fun _path _value -> incr events)
  in

  let plan =
    Centralium.Apps.Min_next_hop_guard.plan fabric.Topology.Clos.graph
      ~destination:Centralium.Destination.backbone_default
      ~threshold:(Centralium.Path_selection.Fraction 0.5) ~keep_fib_warm:true
      ~targets:(fabric.Topology.Clos.ssws @ fabric.Topology.Clos.fsws)
      ~origination_layer:Topology.Node.Eb
  in

  (* Two switches are unreachable when the roll starts. *)
  let offline =
    [ List.nth fabric.Topology.Clos.fsws 0; List.nth fabric.Topology.Clos.fsws 1 ]
  in
  List.iter
    (fun device -> Centralium.Switch_agent.set_reachable agent ~device false)
    offline;

  let progress =
    Centralium.Apps.Slow_roll.execute controller ~plan ~chunk:4
      ~max_out_of_sync:2
  in
  pf "slow roll: %d applied, halted=%b, %d straggler(s): [%s]\n"
    progress.Centralium.Apps.Slow_roll.applied
    progress.Centralium.Apps.Slow_roll.halted
    (List.length progress.Centralium.Apps.Slow_roll.out_of_sync)
    (String.concat "; "
       (List.map string_of_int progress.Centralium.Apps.Slow_roll.out_of_sync));
  pf "operators paged for: [%s]\n"
    (String.concat "; "
       (List.map string_of_int
          (Centralium.Switch_agent.unexpected_unreachable agent)));
  pf "intended-view pub/sub delivered %d events\n" !events;

  (* The switches come back (re-provisioned); continuous reconciliation
     brings them to the intended state with no operator action. *)
  List.iter
    (fun device -> Centralium.Switch_agent.set_reachable agent ~device true)
    offline;
  let caught_up = Centralium.Switch_agent.reconcile agent ~devices:offline in
  ignore (Bgp.Network.converge net);
  pf "after re-provisioning: %d switch(es) caught up, stragglers now: %d\n"
    caught_up
    (List.length (Centralium.Switch_agent.stragglers agent));
  pf "service health: %s\n"
    (Format.asprintf "%a" Centralium.Service.pp_health
       (Centralium.Service.health (Centralium.Switch_agent.service agent)));
  pf "\neventual consistency across the fleet, with stragglers surfaced the \
      whole way.\n"
