(* Quickstart: build a small fabric, run BGP to convergence, inspect routes,
   then deploy a Path Selection RPA through the Centralium controller and
   watch it change forwarding.

   Run with: dune exec examples/quickstart.exe *)

let pf = Printf.printf

let () =
  (* 1. A small five-layer Clos fabric (Figure 1 of the paper). *)
  let fabric = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  pf "topology: %s\n"
    (Format.asprintf "%a" Topology.Graph.pp_stats fabric.Topology.Clos.graph);

  (* 2. A BGP speaker per switch, eBGP sessions per link. *)
  let net = Bgp.Network.create ~seed:1 fabric.Topology.Clos.graph in

  (* 3. The backbone devices originate the default route, tagged with the
        BACKBONE_DEFAULT_ROUTE community at the point of origin. *)
  let default = Net.Prefix.default_v4 in
  let origin_attr =
    Net.Attr.make
      ~communities:
        (Net.Community.Set.singleton
           Net.Community.Well_known.backbone_default_route)
      ()
  in
  List.iter
    (fun eb -> Bgp.Network.originate net eb default origin_attr)
    fabric.Topology.Clos.ebs;
  let events = Bgp.Network.converge net in
  pf "BGP converged after %d events (virtual time %.1f ms)\n" events
    (1000.0 *. Bgp.Network.now net);

  (* 4. Inspect a rack switch's FIB. *)
  let rsw = List.nth fabric.Topology.Clos.rsws 0 in
  (match Bgp.Network.fib net rsw default with
   | Some (Bgp.Speaker.Entries entries) ->
     pf "rsw-0 has the default route over %d next hops (its pod's FSWs)\n"
       (List.length entries)
   | Some Bgp.Speaker.Local | None -> pf "rsw-0: unexpected FIB state\n");

  (* 5. Deploy an RPA through the controller: guard the default route on
        SSWs so it is withdrawn if fewer than half of the FADU uplinks
        still provide it. *)
  let controller = Centralium.Controller.create ~seed:2 net in
  let plan =
    Centralium.Apps.Min_next_hop_guard.plan fabric.Topology.Clos.graph
      ~destination:Centralium.Destination.backbone_default
      ~threshold:(Centralium.Path_selection.Fraction 0.5) ~keep_fib_warm:true
      ~targets:fabric.Topology.Clos.ssws ~origination_layer:Topology.Node.Eb
  in
  pf "\ngenerated RPA (%d lines):\n" (Centralium.Controller.plan_loc plan);
  (match plan.Centralium.Controller.rpas with
   | (_, rpa) :: _ ->
     List.iter (fun l -> pf "  %s\n" l) (Centralium.Rpa.config_lines rpa)
   | [] -> ());
  (match Centralium.Controller.deploy controller plan with
   | Ok report ->
     pf "deployed to %d switches; median push %.2f ms\n"
       report.Centralium.Controller.applied
       (match report.Centralium.Controller.deploy_seconds with
        | [] -> 0.0
        | samples ->
          1000.0 *. (Dsim.Stats.summarize samples).Dsim.Stats.p50)
   | Error es -> pf "deployment failed: %s\n" (String.concat "; " es));

  (* 6. Break half of one SSW's uplinks: the guard withdraws the route
        from below while keeping the FIB warm. *)
  let ssw = List.nth fabric.Topology.Clos.ssws 0 in
  let fadu_neighbors =
    List.filter_map
      (fun ((n : Topology.Node.t), _) ->
        if Topology.Node.layer_equal n.Topology.Node.layer Topology.Node.Fadu
        then Some n.Topology.Node.id
        else None)
      (Topology.Graph.neighbors fabric.Topology.Clos.graph ssw)
  in
  (match fadu_neighbors with
   | fadu :: _ ->
     Bgp.Network.set_link net ssw fadu ~up:false;
     ignore (Bgp.Network.converge net);
     let advertised =
       List.length
         (Bgp.Speaker.advertised_to (Bgp.Network.speaker net ssw)
            ~peer:(List.nth fabric.Topology.Clos.fsws 0))
     in
     pf "\nafter losing an uplink, ssw-0 advertises %d route(s) downstream \
         (guard threshold in effect)\n"
       advertised
   | [] -> ());
  pf "\nquickstart complete.\n"
