(* Scenario 1 (Section 3.2): live topology expansion, replacing the FAv1 +
   Edge layers with a single FAv2 layer, without disrupting traffic.

   The example walks the full migration the way an operator would run it
   with Centralium: pre-deploy path-equalize RPAs bottom-up, activate FAv2
   nodes one by one (watching that no first-router collapse happens),
   decommission the old layers, and remove the RPAs top-down.

   Run with: dune exec examples/topology_expansion.exe *)

let pf = Printf.printf

let measure_shares net (x : Topology.Clos.expansion) =
  let demands = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
  let total = Dataplane.Traffic.total_demand demands in
  let result = Dataplane.Traffic.route_prefix net Net.Prefix.default_v4 ~demands in
  let members = x.fav1 @ x.fav2 in
  ( Dataplane.Metrics.funneling result ~members ~total,
    Dataplane.Metrics.loss_fraction result ~total )

let report label net x =
  let funnel, loss = measure_shares net x in
  pf "%-44s hottest FA: %3.0f%%   loss: %.1f%%\n" label (100.0 *. funnel)
    (100.0 *. loss)

let () =
  let x = Topology.Clos.expansion ~fsws:4 ~ssws:4 ~fav1:4 ~edge:2 () in
  (* Activate all FAv2 nodes in the graph up front so the controller can
     compile per-switch RPAs that already know about them; they attract no
     traffic until BGP converges onto them. *)
  let fav2s = List.init 4 (fun _ -> Topology.Clos.add_fav2 x) in
  let net = Bgp.Network.create ~seed:3 x.xgraph in
  (* Keep FAv2 sessions down until each node is "activated" on-site. *)
  List.iter
    (fun fav2 ->
      List.iter (fun ssw -> Bgp.Network.set_link net fav2 ssw ~up:false) x.xssws;
      Bgp.Network.set_link net fav2 x.backbone ~up:false)
    fav2s;
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4
    (Net.Attr.make
       ~communities:
         (Net.Community.Set.singleton
            Net.Community.Well_known.backbone_default_route)
       ());
  ignore (Bgp.Network.converge net);
  report "initial state (FAv1 + Edge only)" net x;

  (* Pre-deploy the equalizing RPAs through the controller; phases are
     bottom-up (FSW before SSW) per Section 5.3.2. *)
  let controller = Centralium.Controller.create ~seed:4 net in
  let plan = Centralium.Apps.Expansion_equalizer.plan x in
  (match Centralium.Controller.deploy controller plan with
   | Ok report_ ->
     pf "RPAs deployed to %d switches in %d phases\n"
       report_.Centralium.Controller.applied
       (List.length plan.Centralium.Controller.phases)
   | Error es -> failwith (String.concat "; " es));
  report "RPAs active, FAv2 still dark" net x;

  (* Activate FAv2 nodes one at a time: the moment the paper's Figure 2
     calls state A. Without the RPA the first node would take 100%. *)
  List.iteri
    (fun i fav2 ->
      Bgp.Network.set_link net fav2 x.backbone ~up:true;
      List.iter (fun ssw -> Bgp.Network.set_link net fav2 ssw ~up:true) x.xssws;
      ignore (Bgp.Network.converge net);
      report (Printf.sprintf "FAv2 node %d/4 activated" (i + 1)) net x)
    fav2s;

  (* Drain and decommission the old layers. *)
  List.iter (fun fa -> Bgp.Network.drain_device net fa) x.fav1;
  List.iter (fun e -> Bgp.Network.drain_device net e) x.edge;
  ignore (Bgp.Network.converge net);
  report "FAv1 + Edge drained" net x;

  (* Remove the RPAs top-down; no policy residue remains. *)
  (match Centralium.Controller.remove controller plan with
   | Ok _ -> pf "RPAs removed (reverse phase order); BGP back to native\n"
   | Error es -> failwith (String.concat "; " es));
  report "final state (FAv2 only, native BGP)" net x;
  pf "\nmigration complete without a first-router collapse.\n"
