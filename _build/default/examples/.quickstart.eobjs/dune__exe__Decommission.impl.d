examples/decommission.ml: Bgp Centralium Dataplane List Net Printf String Topology
