examples/te_controller.mli:
