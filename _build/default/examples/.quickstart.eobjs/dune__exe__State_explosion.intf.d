examples/state_explosion.mli:
