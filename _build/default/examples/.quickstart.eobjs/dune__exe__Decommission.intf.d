examples/decommission.mli:
