examples/quickstart.ml: Bgp Centralium Dsim Format List Net Printf String Topology
