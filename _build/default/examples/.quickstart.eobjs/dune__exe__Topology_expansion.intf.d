examples/topology_expansion.mli:
