examples/interop.ml: Array Bgp Centralium Dataplane Format List Net Printf String Topology
