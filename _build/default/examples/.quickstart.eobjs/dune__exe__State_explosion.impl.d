examples/state_explosion.ml: Bgp Centralium Dataplane List Net Printf Topology
