examples/fleet_consistency.ml: Bgp Centralium Format List Net Printf String Topology
