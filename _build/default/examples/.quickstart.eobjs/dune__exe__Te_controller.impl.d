examples/te_controller.ml: Centralium Fun List Printf Te Topology
