examples/topology_expansion.ml: Bgp Centralium Dataplane List Net Printf String Topology
