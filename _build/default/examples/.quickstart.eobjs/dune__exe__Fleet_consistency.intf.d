examples/fleet_consistency.mli:
