examples/interop.mli:
