examples/quickstart.mli:
