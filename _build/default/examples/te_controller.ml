(* Centralized traffic engineering between DCN and backbone (Section 6.4):
   the controller consumes topology, solves for min-max link utilization,
   quantizes the weights into link-bandwidth granularity, and ships them as
   Route Attribute RPAs to the FAUU layer ahead of a maintenance event.

   Run with: dune exec examples/te_controller.exe *)

let pf = Printf.printf

let () =
  (* An uplink TE instance: 4 FAUUs, 4 EBs, heterogeneous uplink speeds. *)
  let fauus = 4 and ebs = 4 in
  let sink = fauus + ebs in
  let uplinks =
    List.concat_map
      (fun i ->
        List.map
          (fun j ->
            (i, fauus + j, float_of_int (1 + (((i + j) mod 3) * 2))))
          (List.init ebs Fun.id))
      (List.init fauus Fun.id)
  in
  let egress = List.init ebs (fun j -> (fauus + j, sink, 8.0)) in
  let demands = List.init fauus (fun i -> (i, 6.0)) in
  let instance =
    {
      Te.Solver.node_count = sink + 1;
      edges = uplinks @ egress;
      demands;
      destination = sink;
    }
  in
  let describe label u =
    pf "%-28s max link utilization %.2f -> effective capacity %.1f\n" label u
      (Te.Solver.effective_capacity instance ~max_util:u)
  in
  let u_ecmp = Te.Solver.max_utilization instance (Te.Solver.ecmp_weights instance) in
  describe "ECMP (distributed BGP)" u_ecmp;
  let u_ideal, w_ideal = Te.Solver.optimal instance in
  describe "ideal WCMP (LP bound)" u_ideal;
  let quantized = Te.Solver.quantize ~levels:64 w_ideal in
  let u_rpa = Te.Solver.max_utilization instance quantized in
  describe "RPA-carried WCMP (64 lvls)" u_rpa;

  (* Compile the quantized weights into per-FAUU Route Attribute RPAs. The
     graph here stands in for the controller's topology view. *)
  let graph = Topology.Graph.create () in
  for id = 0 to sink do
    let layer =
      if id < fauus then Topology.Node.Fauu
      else if id < sink then Topology.Node.Eb
      else Topology.Node.Other "SINK"
    in
    Topology.Graph.add_node graph
      (Topology.Node.make ~id ~name:(Printf.sprintf "n%d" id) ~layer ())
  done;
  List.iter
    (fun (a, b, capacity) -> Topology.Graph.add_link ~capacity graph a b)
    (uplinks @ egress);
  pf "\nper-FAUU Route Attribute RPAs (weights expire after the maintenance \
      window):\n";
  List.iter
    (fun fauu ->
      let weights =
        List.map (fun (dst, w) -> (dst, int_of_float w)) (quantized fauu)
      in
      let rpa =
        Centralium.Apps.Te_weights.rpa_for_device graph
          ~destination:Centralium.Destination.backbone_default ~device:fauu
          ~weights ~expires_at:3600.0 ()
      in
      pf "-- fauu %d (%d lines):\n" fauu (Centralium.Rpa.loc rpa);
      List.iter
        (fun l -> pf "   %s\n" l)
        (Centralium.Rpa.config_lines rpa))
    (List.init fauus Fun.id);
  pf "\nRPA-TE achieves %.0f%% of the ideal effective capacity (ECMP: %.0f%%).\n"
    (100.0
     *. (Te.Solver.effective_capacity instance ~max_util:u_rpa
         /. Te.Solver.effective_capacity instance ~max_util:u_ideal))
    (100.0
     *. (Te.Solver.effective_capacity instance ~max_util:u_ecmp
         /. Te.Solver.effective_capacity instance ~max_util:u_ideal))
