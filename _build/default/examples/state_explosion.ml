(* Scenario 3 (Section 3.4): transient forwarding-state exhaustion during
   distributed WCMP convergence, and its elimination by prescribing weights
   a priori with a Route Attribute RPA.

   Run with: dune exec examples/state_explosion.exe *)

let pf = Printf.printf

let prefixes = 64

let prefix_of i = Net.Prefix.v4 10 (i / 256) (i mod 256) 0 24

let run ~with_rpa =
  let w = Topology.Clos.wcmp_convergence ~ebs:8 ~uus:4 ~dus:1 () in
  let du = List.nth w.Topology.Clos.dus 0 in
  let config = { Bgp.Speaker.default_config with wcmp = true } in
  let net = Bgp.Network.create ~seed:7 ~config w.wgraph in
  if with_rpa then begin
    let rpa =
      Centralium.Apps.Wcmp_freeze.rpa
        ~destination:
          (Centralium.Destination.Prefixes
             [ Net.Prefix.of_string_exn "10.0.0.0/8" ])
        ~live_weight:1
        ~drained_signature:
          (Centralium.Signature.make
             ~communities:[ Net.Community.Well_known.drained ]
             ())
        ()
    in
    Bgp.Network.set_hooks net du
      (Centralium.Engine.hooks (Centralium.Engine.create rpa))
  end;
  for i = 0 to prefixes - 1 do
    List.iter
      (fun eb -> Bgp.Network.originate net eb (prefix_of i) (Net.Attr.make ()))
      w.ebs
  done;
  ignore (Bgp.Network.converge net);
  let initial = Bgp.Speaker.fib (Bgp.Network.speaker net du) in
  Bgp.Trace.clear (Bgp.Network.trace net);
  (match w.ebs with
   | eb1 :: eb2 :: _ ->
     Bgp.Network.drain_device ~delay:0.0 net eb1;
     Bgp.Network.drain_device ~delay:0.003 net eb2
   | _ -> assert false);
  ignore (Bgp.Network.converge net);
  let timeline =
    Dataplane.Nhg.timeline_on_device ~initial (Bgp.Network.trace net) ~device:du
  in
  let peak = Dataplane.Nhg.max_on_device ~initial (Bgp.Network.trace net) ~device:du in
  (peak, timeline)

let () =
  pf "EB[1:8] advertise %d prefixes to UU[1:4]; each UU-DU pair runs two \
      BGP sessions.\n"
    prefixes;
  pf "EB1 and EB2 go into maintenance 3 ms apart; the DU's hardware must \
      hold every distinct next-hop-group object that appears.\n\n";
  let native_peak, native_timeline = run ~with_rpa:false in
  let rpa_peak, _ = run ~with_rpa:true in
  pf "distributed WCMP: peak %d distinct next-hop groups on the DU\n"
    native_peak;
  pf "  (%d FIB updates during convergence; theoretical bound 4^8 = 65536)\n"
    (List.length native_timeline);
  pf "Route Attribute RPA (weights prescribed a priori): peak %d group(s)\n"
    rpa_peak;
  pf "\nthe transient explosion is structural to distributed WCMP; the RPA \
      removes it by decoupling weights from convergence order.\n"
