(* Interoperability between RPA and non-RPA switches (Section 5.3), plus
   the debugging tooling of Section 7.2.

   R6 runs a Path Selection RPA that load-balances prefix D over R2 and R5
   while R1-R5 run native BGP. Advertising R6's best selected path installs
   a persistent forwarding loop between R5 and R6; the production rule —
   advertise the least favorable selected path — prevents it. The example
   then uses the debug tooling to explain R6's decision.

   Run with: dune exec examples/interop.exe *)

let pf = Printf.printf

let prefix_d = Net.Prefix.of_string_exn "203.0.113.0/24"

let build ~advertise_least_favorable =
  let m = Topology.Clos.mixed_dissemination () in
  let net = Bgp.Network.create ~seed:9 m.Topology.Clos.mgraph in
  let r = m.Topology.Clos.r in
  let asn_of d = (Topology.Graph.node m.mgraph d).Topology.Node.asn in
  let rpa =
    Centralium.Rpa.make ~advertise_least_favorable
      ~path_selection:
        [
          Centralium.Path_selection.make
            [
              Centralium.Path_selection.statement ~name:"balance-r2-r5"
                ~path_sets:
                  [
                    Centralium.Path_selection.path_set ~name:"r2-r5"
                      (Centralium.Signature.make
                         ~neighbor_asns:[ asn_of r.(2); asn_of r.(5) ]
                         ());
                  ]
                (Centralium.Destination.Prefixes [ prefix_d ]);
            ];
        ]
      ()
  in
  Bgp.Network.set_hooks net r.(6) (Centralium.Engine.hooks (Centralium.Engine.create rpa));
  Bgp.Network.originate net m.origin prefix_d (Net.Attr.make ());
  ignore (Bgp.Network.converge net);
  (m, net, rpa)

let report_loops (m : Topology.Clos.mixed) net =
  let devices =
    List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes m.mgraph)
  in
  match
    Dataplane.Metrics.find_forwarding_loops
      ~lookup:(fun d -> Bgp.Network.fib net d prefix_d)
      ~devices
  with
  | [] -> pf "  forwarding is loop-free\n"
  | cycles ->
    List.iter
      (fun cycle ->
        pf "  PERSISTENT LOOP: %s\n"
          (String.concat " -> " (List.map string_of_int cycle)))
      cycles

let () =
  pf "R6 is the only RPA speaker; R1-R5 run native multipath BGP.\n\n";

  pf "variant A - R6 advertises its BEST selected path (the naive choice):\n";
  let m, net, _ = build ~advertise_least_favorable:false in
  report_loops m net;

  pf "\nvariant B - R6 advertises its LEAST FAVORABLE selected path \
      (Section 5.3.1 rule):\n";
  let m, net, rpa = build ~advertise_least_favorable:true in
  report_loops m net;

  (* Explain R6's decision with the Section 7.2 tooling. *)
  pf "\nwhy did R6 do that? (debug tooling)\n";
  let r6 = m.Topology.Clos.r.(6) in
  let speaker = Bgp.Network.speaker net r6 in
  let env = Bgp.Network.env net in
  let ctx =
    {
      Bgp.Rib_policy.device = r6;
      prefix = prefix_d;
      now = env.Bgp.Speaker.now;
      peer_layer = env.Bgp.Speaker.peer_layer;
      live_peers_in_layer = (fun _ -> List.length (Bgp.Speaker.peers speaker));
    }
  in
  let explanation =
    Centralium.Debug.explain
      (Centralium.Engine.create rpa)
      ~ctx
      ~candidates:(Bgp.Speaker.candidates speaker prefix_d)
  in
  Format.printf "%a" Centralium.Debug.pp_explanation explanation;
  pf "\nthe rule costs nothing in steady state and removes the loop class \
      entirely.\n"
