(* Scenario 2 (Section 3.3): decommissioning all SSW-1s and FADU-1s to make
   space for new switches, protected against the last-router problem by a
   BgpNativeMinNextHop guard injected only into the switches being
   decommissioned (Section 4.4.2).

   Run with: dune exec examples/decommission.exe *)

let pf = Printf.printf

let number = 1 (* decommission all switches numbered 1 *)

let () =
  let d = Topology.Clos.decommission ~planes:4 ~grids:8 ~per:4 () in
  let net = Bgp.Network.create ~seed:5 d.Topology.Clos.dgraph in
  let ssw1s = Topology.Clos.ssws_numbered d number in
  let fadu1s = Topology.Clos.fadus_numbered d number in
  Bgp.Network.originate net d.north_origin Net.Prefix.default_v4
    (Net.Attr.make
       ~communities:
         (Net.Community.Set.singleton
            Net.Community.Well_known.backbone_default_route)
       ());
  ignore (Bgp.Network.converge net);

  let demands = [ (d.south_origin, 16.0) ] in
  let total = Dataplane.Traffic.total_demand demands in
  let hottest_fadu1 () =
    let result =
      Dataplane.Traffic.route_prefix net Net.Prefix.default_v4 ~demands
    in
    Dataplane.Metrics.funneling result ~members:fadu1s ~total
  in
  pf "steady state: hottest FADU-1 carries %.1f%% of northbound demand\n"
    (100.0 *. hottest_fadu1 ());

  (* Inject the guard into the SSW-1s only: withdraw the default from
     below when fewer than 75%% of FADU uplinks still provide it, keeping
     the FIB warm so in-flight packets are not dropped. *)
  let controller = Centralium.Controller.create ~seed:6 net in
  let guard =
    Centralium.Apps.Decommission_guard.plan d.dgraph
      ~destination:Centralium.Destination.backbone_default
      ~threshold:(Centralium.Path_selection.Fraction 0.75)
      ~decommissioned:ssw1s ~origination_layer:Topology.Node.Eb
  in
  (match Centralium.Controller.deploy controller guard with
   | Ok _ -> pf "guard RPA active on %d SSW-1s\n" (List.length ssw1s)
   | Error es -> failwith (String.concat "; " es));

  (* Step 1: drain all FADU-1s. The guard fires as their live count drops
     and the SSW-1s stop attracting traffic instead of funneling it. *)
  List.iteri
    (fun i fadu -> Bgp.Network.drain_device ~delay:(0.002 *. float_of_int i) net fadu)
    fadu1s;
  ignore (Bgp.Network.converge net);
  pf "all FADU-1s drained: hottest FADU-1 now %.1f%%\n"
    (100.0 *. hottest_fadu1 ());

  (* Step 2: drain all SSW-1s, then take everything down. *)
  List.iter (fun ssw -> Bgp.Network.drain_device net ssw) ssw1s;
  ignore (Bgp.Network.converge net);
  List.iter
    (fun ssw ->
      List.iter
        (fun ((n : Topology.Node.t), _) ->
          Bgp.Network.set_link net ssw n.Topology.Node.id ~up:false)
        (Topology.Graph.neighbors d.dgraph ssw))
    ssw1s;
  ignore (Bgp.Network.converge net);

  let result = Dataplane.Traffic.route_prefix net Net.Prefix.default_v4 ~demands in
  pf "SSW-1s and FADU-1s out of service: loss = %.1f%%, hottest FADU-1 = %.1f%%\n"
    (100.0 *. Dataplane.Metrics.loss_fraction result ~total)
    (100.0 *. hottest_fadu1 ());
  pf "\ndecommission completed in two steps (Section 4.4.2), no funneling, \
      no black-holing.\n"
