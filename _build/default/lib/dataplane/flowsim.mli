(** Flow-level forwarding simulation.

    {!Traffic} models volume fluidly (exact proportional splits), which is
    right for utilization and funneling but cannot express per-packet
    outcomes: a packet caught in a forwarding loop is dropped when its TTL
    expires (the "packets will be dropped during this time" of
    Section 3.3). This module forwards discrete flows instead: at every
    hop the flow id is hashed onto the weighted next-hop set — the ECMP/
    WCMP hashing switches actually perform — and a TTL bounds its life. *)

type result = {
  delivered : int;
  dropped_no_route : int;  (** reached a device without a route *)
  dropped_ttl : int;       (** expired in a loop *)
  hop_counts : (int * int) list;
      (** (hops, delivered flows with that hop count), sorted *)
}

val run :
  ?ttl:int ->
  lookup:(int -> Bgp.Speaker.fib_state option) ->
  flows:(int * int) list ->
  unit ->
  result
(** [run ~lookup ~flows ()] forwards each (source, flow id) until delivery
    ([Local]), a missing route, or TTL exhaustion (default 64). Hashing is
    deterministic: the same flow takes the same path on every run. *)

val loss_fraction : result -> float

val next_hop_of : flow:int -> device:int -> Bgp.Speaker.entry list -> Bgp.Speaker.entry
(** The hashing decision itself: picks the entry whose cumulative weight
    bucket the flow hashes into. Raises [Invalid_argument] on []. Exposed
    for distribution tests. *)
