type result = {
  delivered : float;
  dropped : float;
  looped : float;
  transit : (int, float) Hashtbl.t;
  link_load : (int * int, float) Hashtbl.t;
  delivered_at : (int, float) Hashtbl.t;
}

let add table key v =
  let current = Option.value (Hashtbl.find_opt table key) ~default:0.0 in
  Hashtbl.replace table key (current +. v)

let total_demand demands = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 demands

let route ?(max_rounds = 64) ~lookup ~demands () =
  let transit = Hashtbl.create 64 in
  let link_load = Hashtbl.create 64 in
  let delivered_at = Hashtbl.create 8 in
  let delivered = ref 0.0 and dropped = ref 0.0 in
  let inflow = Hashtbl.create 64 in
  List.iter (fun (device, volume) -> add inflow device volume) demands;
  let rounds = ref 0 in
  let remaining () = Hashtbl.fold (fun _ v acc -> acc +. v) inflow 0.0 in
  while Hashtbl.length inflow > 0 && !rounds < max_rounds do
    incr rounds;
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun device volume ->
        if volume > 0.0 then begin
          add transit device volume;
          match lookup device with
          | Some Bgp.Speaker.Local ->
            delivered := !delivered +. volume;
            add delivered_at device volume
          | None -> dropped := !dropped +. volume
          | Some (Bgp.Speaker.Entries entries) ->
            let weight_sum =
              List.fold_left
                (fun acc e -> acc + e.Bgp.Speaker.weight)
                0 entries
            in
            List.iter
              (fun e ->
                let share =
                  volume
                  *. float_of_int e.Bgp.Speaker.weight
                  /. float_of_int weight_sum
                in
                add link_load (device, e.Bgp.Speaker.next_hop) share;
                add next e.Bgp.Speaker.next_hop share)
              entries
        end)
      inflow;
    Hashtbl.reset inflow;
    Hashtbl.iter (fun device volume -> Hashtbl.replace inflow device volume) next
  done;
  let looped = remaining () in
  {
    delivered = !delivered;
    dropped = !dropped;
    looped;
    transit;
    link_load;
    delivered_at;
  }

let route_prefix ?max_rounds network prefix ~demands =
  route ?max_rounds
    ~lookup:(fun device -> Bgp.Network.fib network device prefix)
    ~demands ()

let route_destination ?max_rounds network destination ~demands =
  route ?max_rounds
    ~lookup:(fun device ->
      Option.map snd
        (Bgp.Speaker.fib_longest_match
           (Bgp.Network.speaker network device)
           destination))
    ~demands ()

let route_snapshot ?max_rounds snapshot ~demands =
  route ?max_rounds ~lookup:(Hashtbl.find_opt snapshot) ~demands ()
