type result = {
  delivered : int;
  dropped_no_route : int;
  dropped_ttl : int;
  hop_counts : (int * int) list;
}

(* A splitmix-style avalanche so that consecutive flow ids spread evenly
   over the buckets at every device independently. *)
let mix flow device =
  let z = Int64.of_int ((flow * 0x9E3779B9) lxor (device * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 2)

let next_hop_of ~flow ~device entries =
  match entries with
  | [] -> invalid_arg "Flowsim.next_hop_of: empty next-hop set"
  | _ :: _ ->
    let total =
      List.fold_left (fun acc e -> acc + max 1 e.Bgp.Speaker.weight) 0 entries
    in
    let bucket = mix flow device mod total in
    let rec pick acc = function
      | [] -> invalid_arg "Flowsim.next_hop_of: bucket out of range"
      | e :: rest ->
        let acc = acc + max 1 e.Bgp.Speaker.weight in
        if bucket < acc then e else pick acc rest
    in
    pick 0 entries

let run ?(ttl = 64) ~lookup ~flows () =
  let delivered = ref 0 and no_route = ref 0 and expired = ref 0 in
  let hops_table = Hashtbl.create 16 in
  List.iter
    (fun (source, flow) ->
      let rec walk device remaining hops =
        if remaining = 0 then incr expired
        else
          match lookup device with
          | Some Bgp.Speaker.Local ->
            incr delivered;
            Hashtbl.replace hops_table hops
              (1 + Option.value (Hashtbl.find_opt hops_table hops) ~default:0)
          | None -> incr no_route
          | Some (Bgp.Speaker.Entries entries) ->
            let e = next_hop_of ~flow ~device entries in
            walk e.Bgp.Speaker.next_hop (remaining - 1) (hops + 1)
      in
      walk source ttl 0)
    flows;
  {
    delivered = !delivered;
    dropped_no_route = !no_route;
    dropped_ttl = !expired;
    hop_counts =
      Hashtbl.fold (fun h n acc -> (h, n) :: acc) hops_table []
      |> List.sort compare;
  }

let loss_fraction r =
  let total = r.delivered + r.dropped_no_route + r.dropped_ttl in
  if total = 0 then 0.0
  else float_of_int (r.dropped_no_route + r.dropped_ttl) /. float_of_int total
