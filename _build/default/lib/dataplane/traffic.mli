(** Traffic propagation over forwarding state.

    Injects demand volumes at source devices and lets them flow along
    weighted FIB entries (WCMP hashing is modeled fluidly: volume splits in
    proportion to weights). The propagation is round-based; volume still in
    flight after the round budget is classified as {e looped}, which is how
    persistent forwarding loops (Figure 9) show up quantitatively. *)

type result = {
  delivered : float;
  dropped : float;  (** reached a device without a route *)
  looped : float;   (** never terminated: circulating in a forwarding loop *)
  transit : (int, float) Hashtbl.t;
      (** total volume that entered each device (sources included) *)
  link_load : (int * int, float) Hashtbl.t;  (** directed (from, to) volume *)
  delivered_at : (int, float) Hashtbl.t;
      (** volume that terminated at each originating device *)
}

val route :
  ?max_rounds:int ->
  lookup:(int -> Bgp.Speaker.fib_state option) ->
  demands:(int * float) list ->
  unit ->
  result
(** [lookup device] is the device's forwarding decision for the destination
    under study — typically [Speaker.fib_lookup] for a single prefix or
    [Speaker.fib_longest_match] for a concrete destination address.
    [max_rounds] defaults to 64 (far above any Clos diameter). *)

val route_prefix :
  ?max_rounds:int ->
  Bgp.Network.t -> Net.Prefix.t -> demands:(int * float) list -> result
(** Exact-match propagation of the converged network state. *)

val route_destination :
  ?max_rounds:int ->
  Bgp.Network.t -> Net.Prefix.t -> demands:(int * float) list -> result
(** Longest-prefix-match propagation toward a host prefix — required for
    the Figure 14 scenario where a more-specific route hijacks traffic from
    the default route. *)

val route_snapshot :
  ?max_rounds:int ->
  (int, Bgp.Speaker.fib_state) Hashtbl.t -> demands:(int * float) list -> result
(** Propagation over a historical FIB snapshot from {!Bgp.Trace.fib_timeline}
    (single-prefix, exact match). *)

val total_demand : (int * float) list -> float
