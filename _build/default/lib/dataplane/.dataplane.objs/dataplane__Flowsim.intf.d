lib/dataplane/flowsim.mli: Bgp
