lib/dataplane/traffic.ml: Bgp Hashtbl List Option
