lib/dataplane/nhg.ml: Bgp Format Hashtbl List Net Set Stdlib
