lib/dataplane/traffic.mli: Bgp Hashtbl Net
