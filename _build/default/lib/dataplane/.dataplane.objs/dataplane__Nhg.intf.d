lib/dataplane/nhg.mli: Bgp Format Net
