lib/dataplane/metrics.mli: Bgp Hashtbl Traffic
