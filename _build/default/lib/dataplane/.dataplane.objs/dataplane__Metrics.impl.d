lib/dataplane/metrics.ml: Bgp Float Hashtbl List Option Traffic
