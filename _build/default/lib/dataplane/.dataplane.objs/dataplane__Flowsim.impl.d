lib/dataplane/flowsim.ml: Bgp Hashtbl Int64 List Option
