(** Next-hop-group objects — the scarce on-chip resource of Section 3.4.

    A next-hop group (NHG) is the hardware object that a forwarding
    equivalence class points at: a weighted set of (port, weight) pairs.
    Prefixes sharing the same weighted next-hop set share one object;
    switch ASICs support only a bounded number of distinct objects. During
    distributed WCMP convergence, prefixes transiently disagree about
    weights and the object count explodes (up to [s^m] combinations). *)

type t
(** A canonical next-hop group: sorted (next_hop, session, weight) triples
    with weights reduced by their gcd, so groups that induce the same
    forwarding behaviour compare equal. *)

val of_entries : Bgp.Speaker.entry list -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val distinct_count : (Net.Prefix.t * Bgp.Speaker.fib_state) list -> int
(** Number of distinct NHG objects a FIB table needs ([Local] prefixes need
    none). *)

val max_on_device :
  ?initial:(Net.Prefix.t * Bgp.Speaker.fib_state) list ->
  Bgp.Trace.t -> device:int -> int
(** Replays the trace and returns the peak number of simultaneously needed
    distinct NHG objects on the device — the quantity that overflows
    hardware in Figure 5. [initial] is the device's FIB at trace start
    (default empty); the peak includes the initial count. *)

val timeline_on_device :
  ?initial:(Net.Prefix.t * Bgp.Speaker.fib_state) list ->
  Bgp.Trace.t -> device:int -> (float * int) list
(** (time, distinct NHG count) after every FIB change on the device. *)
