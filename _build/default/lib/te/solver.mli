(** Traffic-engineering solvers: ECMP baseline, ideal WCMP (minimum
    achievable maximum link utilization), and RPA-quantized WCMP.

    An {!instance} is a single-destination routing problem on a DAG: demand
    enters at some devices and must reach [destination] over directed,
    capacitated edges. The three policies of Figure 13 are:
    - {!ecmp_weights}: split equally over all outgoing edges — what
      distributed BGP multipath does;
    - {!optimal}: the theoretical optimum ("ideal WCMP") from a max-flow
      based binary search on the utilization bound;
    - {!quantize}d optimal weights: what the RPA-carried integer
      link-bandwidth weights can express. *)

type instance = {
  node_count : int;           (** nodes are [0 .. node_count - 1] *)
  edges : (int * int * float) list;
      (** directed (src, dst, capacity); must form a DAG toward
          [destination] *)
  demands : (int * float) list;
  destination : int;
}

val total_demand : instance -> float

type weights = int -> (int * float) list
(** Per-device weighted next hops; empty for the destination and for
    devices that carry no traffic. *)

val ecmp_weights : instance -> weights
(** Weight 1 on every outgoing edge. *)

val max_utilization : instance -> weights -> float
(** Propagates the demands along the weights and returns max over edges of
    load / capacity. Raises [Failure] if traffic reaches a device with no
    outgoing weight (other than the destination) — the instance is
    malformed. *)

val optimal : ?tolerance:float -> instance -> float * weights
(** The minimum achievable max utilization together with fractional
    weights attaining it (up to [tolerance], default 1e-4, via binary
    search on the utilization bound with one max-flow check per step). *)

val quantize : ?levels:int -> weights -> weights
(** Rounds fractional weights to integers in [1 .. levels] (default 64 —
    the granularity of a link-bandwidth community in this codebase),
    preserving ratios as well as the budget allows. *)

val effective_capacity : instance -> max_util:float -> float
(** The total demand the network could carry at utilization 1 if scaled
    proportionally: [total_demand / max_util]. The paper's Figure 13
    y-axis. *)
