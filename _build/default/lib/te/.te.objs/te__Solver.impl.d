lib/te/solver.ml: Float Hashtbl List Maxflow Option Printf
