lib/te/maxflow.mli:
