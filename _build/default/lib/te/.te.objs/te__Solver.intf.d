lib/te/solver.mli:
