lib/te/maxflow.ml: Array Float Hashtbl List Option Queue
