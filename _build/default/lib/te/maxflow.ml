let epsilon = 1e-9

(* Edges are stored flat; [adj.(v)] lists edge indices out of [v] (forward
   and residual). Edge [i] and its reverse are paired as [i lxor 1]; forward
   edges have even indices. [orig] keeps the pristine capacities so
   [max_flow] can be re-run from scratch. *)
type t = {
  nodes : int;
  mutable dst_of : int array;
  mutable cap : float array;
  mutable orig : float array;
  mutable edge_count : int;
  adj : int list array;
}

let create ~nodes =
  {
    nodes;
    dst_of = Array.make 16 0;
    cap = Array.make 16 0.0;
    orig = Array.make 16 0.0;
    edge_count = 0;
    adj = Array.make nodes [];
  }

let ensure_capacity t =
  if t.edge_count + 2 > Array.length t.cap then begin
    let n = 2 * Array.length t.cap in
    let dst_of = Array.make n 0 and cap = Array.make n 0.0
    and orig = Array.make n 0.0 in
    Array.blit t.dst_of 0 dst_of 0 t.edge_count;
    Array.blit t.cap 0 cap 0 t.edge_count;
    Array.blit t.orig 0 orig 0 t.edge_count;
    t.dst_of <- dst_of;
    t.cap <- cap;
    t.orig <- orig
  end

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes then
    invalid_arg "Maxflow.add_edge: node out of range";
  if capacity < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  ensure_capacity t;
  let e = t.edge_count in
  t.dst_of.(e) <- dst;
  t.cap.(e) <- capacity;
  t.orig.(e) <- capacity;
  t.dst_of.(e + 1) <- src;
  t.cap.(e + 1) <- 0.0;
  t.orig.(e + 1) <- 0.0;
  t.edge_count <- t.edge_count + 2;
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- (e + 1) :: t.adj.(dst)

let max_flow t ~source ~sink =
  Array.blit t.orig 0 t.cap 0 t.edge_count;
  let level = Array.make t.nodes (-1) in
  let iter = Array.make t.nodes [] in
  let bfs () =
    Array.fill level 0 t.nodes (-1);
    level.(source) <- 0;
    let queue = Queue.create () in
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun e ->
          let w = t.dst_of.(e) in
          if t.cap.(e) > epsilon && level.(w) < 0 then begin
            level.(w) <- level.(v) + 1;
            Queue.add w queue
          end)
        t.adj.(v)
    done;
    level.(sink) >= 0
  in
  let rec dfs v limit =
    if v = sink then limit
    else begin
      let rec try_edges () =
        match iter.(v) with
        | [] -> 0.0
        | e :: rest ->
          let w = t.dst_of.(e) in
          if t.cap.(e) > epsilon && level.(w) = level.(v) + 1 then begin
            let pushed = dfs w (Float.min limit t.cap.(e)) in
            if pushed > epsilon then begin
              t.cap.(e) <- t.cap.(e) -. pushed;
              t.cap.(e lxor 1) <- t.cap.(e lxor 1) +. pushed;
              pushed
            end
            else begin
              iter.(v) <- rest;
              try_edges ()
            end
          end
          else begin
            iter.(v) <- rest;
            try_edges ()
          end
      in
      try_edges ()
    end
  in
  let flow = ref 0.0 in
  while bfs () do
    for v = 0 to t.nodes - 1 do
      iter.(v) <- t.adj.(v)
    done;
    let continue = ref true in
    while !continue do
      let pushed = dfs source infinity in
      if pushed > epsilon then flow := !flow +. pushed else continue := false
    done
  done;
  !flow

let flow_on t ~src ~dst =
  (* Flow on a forward edge equals the capacity accumulated on its reverse
     edge. *)
  let total = ref 0.0 in
  List.iter
    (fun e ->
      if e land 1 = 0 && t.dst_of.(e) = dst then
        total := !total +. t.cap.(e lxor 1))
    t.adj.(src);
  !total

let out_flows t v =
  let per_dst = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e land 1 = 0 then begin
        let f = t.cap.(e lxor 1) in
        if f > epsilon then begin
          let dst = t.dst_of.(e) in
          let cur = Option.value (Hashtbl.find_opt per_dst dst) ~default:0.0 in
          Hashtbl.replace per_dst dst (cur +. f)
        end
      end)
    t.adj.(v);
  Hashtbl.fold (fun dst f acc -> (dst, f) :: acc) per_dst []
  |> List.sort compare
