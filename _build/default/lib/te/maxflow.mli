(** Dinic's maximum-flow algorithm on directed graphs with float
    capacities.

    Substrate for the ideal-WCMP comparator of Figure 13: the minimum
    achievable maximum-link-utilization is found by binary search over a
    utilization bound, each step checked with one max-flow computation. *)

type t

val create : nodes:int -> t
(** Nodes are [0 .. nodes-1]. *)

val add_edge : t -> src:int -> dst:int -> capacity:float -> unit
(** Parallel edges are allowed and treated independently. Raises
    [Invalid_argument] on out-of-range endpoints or negative capacity. *)

val max_flow : t -> source:int -> sink:int -> float
(** Computes the max flow; the flow assignment is retained for {!flow_on}
    and {!out_flows}. Calling it again resets previous flow. *)

val flow_on : t -> src:int -> dst:int -> float
(** Total flow currently assigned on edges [src -> dst]. *)

val out_flows : t -> int -> (int * float) list
(** Positive outgoing flows of a node as (dst, flow), aggregated over
    parallel edges. *)
