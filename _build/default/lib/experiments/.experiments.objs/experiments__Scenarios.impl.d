lib/experiments/scenarios.ml: Array Bgp Centralium Dataplane Dsim Float Fun Hashtbl List Net Option Te Topology
