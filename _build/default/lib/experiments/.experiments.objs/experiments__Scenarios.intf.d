lib/experiments/scenarios.mli:
