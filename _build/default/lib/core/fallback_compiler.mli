(** Indirect RPA realization through low-level BGP primitives
    (Section 7.4, "Applying to Small/Medium Networks").

    Centralium proper requires owning the BGP daemon. Networks that cannot
    modify their daemon can still realize part of a route plan by compiling
    it into conventional per-session policies — the "external compiler"
    escape hatch the paper sketches, which is "more difficult to reason
    about and can increase the risk of errors".

    The compiler handles the equalize-style Path Selection intent (a single
    path set over a destination group) by computing, per target device, the
    AS-path padding each upstream session needs so that all upstream paths
    tie — i.e. it automates the Section 3.2 "naive approach". Everything
    else (minimum-next-hop guards, prescribed weights, mask-bounded
    filters) is {e not} expressible with these primitives and is reported
    as a warning instead of being silently dropped.

    The compiled policies carry the paper's documented liabilities, which
    the tests demonstrate: they are transitory configuration that must be
    cleaned up, and redacting them re-creates the funneling risk. *)

type compiled = {
  ingress_policies : (int * int * Bgp.Policy.t) list;
      (** (device, peer, policy): install as the device's ingress policy
          for that peer *)
  warnings : string list;
      (** RPA constructs that have no low-level BGP equivalent *)
}

val compile :
  Topology.Graph.t ->
  origination_layer:Topology.Node.layer ->
  targets:int list ->
  Rpa.t ->
  compiled

val apply : Bgp.Network.t -> compiled -> unit
(** Schedules the ingress policies onto the network (converge afterwards). *)

val remove : Bgp.Network.t -> compiled -> unit
(** Redacts the compiled policies — the risky cleanup step. *)
