(** Application-layer use cases (Section 5.1: "We have onboarded 10+ use
    cases, including Path Selection, Traffic Engineering, and Route
    Filtering").

    Each application compiles a high-level operator intent into a
    {!Controller.plan}: per-switch RPAs plus a safe deployment order. The
    controller does the rest (checks, phased rollout, consistency). *)

val all_app_names : string list

val upstream_asns :
  Topology.Graph.t -> origination_layer:Topology.Node.layer -> int ->
  Net.Asn.t list
(** ASNs of the device's live neighbors that sit {e toward} the origination
    layer. Per-switch RPA generation scopes path-set signatures to these,
    so a path re-learned sideways from a downstream peer can never match
    the set (which would otherwise destabilize selection). *)

(** {1 Path-selection applications} *)

(** Equalize paths of varying AS-path lengths toward a destination group
    (Section 4.4.1) — the fix for the first-router problem of topology
    expansions (Figure 2) and the rollout example of Figure 10. *)
module Path_equalize : sig
  val rpa :
    destination:Destination.t ->
    origin_asn:Net.Asn.t ->
    via:Net.Asn.t list ->
    Rpa.t
  (** One statement: a single path set matching every path originated by
      [origin_asn] and learned from a neighbor in [via], making AS-path
      length irrelevant among them. *)

  val plan :
    Topology.Graph.t ->
    destination:Destination.t ->
    origin_asn:Net.Asn.t ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    Controller.plan
  (** Generates one RPA {e per switch} (controller function 2 of
      Section 5): each target's path set is scoped to its own upstream
      neighbors. *)
end

(** Localized capacity-collapse prevention (Section 4.4.2) — the fix for
    the last-router problem of decommissions (Figure 4). *)
module Min_next_hop_guard : sig
  val rpa :
    destination:Destination.t ->
    threshold:Path_selection.min_next_hop ->
    keep_fib_warm:bool ->
    Rpa.t

  val plan :
    Topology.Graph.t ->
    destination:Destination.t ->
    threshold:Path_selection.min_next_hop ->
    keep_fib_warm:bool ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    Controller.plan
end

(** Differential traffic distribution (Section 3.1c): pin anycast
    load-bearing prefixes to the paths of a stable signature so maintenance
    that breaks symmetry does not move them. *)
module Anycast_stability : sig
  val rpa : origin_asn:Net.Asn.t -> via:Net.Asn.t list -> Rpa.t

  val plan :
    Topology.Graph.t ->
    origin_asn:Net.Asn.t ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    Controller.plan
end

(** Conditional primary/backup forwarding (Section 3.1d, routing policy
    transitions): the path-set priority list prefers the primary signature
    and falls back to the backup only when the primary has too few active
    routes. *)
module Backup_preference : sig
  val rpa :
    destination:Destination.t ->
    primary:Signature.t ->
    ?primary_min_next_hop:Path_selection.min_next_hop ->
    backup:Signature.t ->
    unit ->
    Rpa.t

  val plan :
    Topology.Graph.t ->
    destination:Destination.t ->
    primary:Signature.t ->
    ?primary_min_next_hop:Path_selection.min_next_hop ->
    backup:Signature.t ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    unit ->
    Controller.plan
end

(** {1 Traffic-engineering applications} *)

(** Centralized TE between DCN and backbone (Section 6.4 / Figure 13):
    prescribes per-device WCMP weights computed by the {!Te} solver as
    Route Attribute RPAs. Next hops are identified by their neighbor ASN
    signature. *)
module Te_weights : sig
  val rpa_for_device :
    Topology.Graph.t ->
    destination:Destination.t ->
    device:int ->
    weights:(int * int) list ->
    ?expires_at:float ->
    unit ->
    Rpa.t
  (** [weights] maps next-hop device ids to integer weights. *)

  val plan :
    Topology.Graph.t ->
    destination:Destination.t ->
    weights:(int * (int * int) list) list ->
    origination_layer:Topology.Node.layer ->
    ?expires_at:float ->
    unit ->
    Controller.plan
end

(** Pre-maintenance WCMP freeze (the Section 3.4 / Figure 5 fix):
    prescribe the post-maintenance weights a priori so convergence never
    explores combinatorial next-hop-group combinations. *)
module Wcmp_freeze : sig
  val rpa :
    destination:Destination.t ->
    live_weight:int ->
    drained_signature:Signature.t ->
    ?expires_at:float ->
    unit ->
    Rpa.t
  (** Paths matching [drained_signature] get weight dropped to 1 while all
      others carry [live_weight]; prescribed before the drain happens. *)

  val plan :
    Topology.Graph.t ->
    destination:Destination.t ->
    live_weight:int ->
    drained_signature:Signature.t ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    ?expires_at:float ->
    unit ->
    Controller.plan
end

(** {1 Route-filtering applications} *)

(** Boundary prefix filtering between network domains (data center and
    backbone). *)
module Boundary_filter : sig
  val rpa :
    peer_layers:Topology.Node.layer list ->
    allowed:Route_filter.prefix_rule list ->
    Rpa.t

  val plan :
    Topology.Graph.t ->
    peer_layers:Topology.Node.layer list ->
    allowed:Route_filter.prefix_rule list ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    Controller.plan
end

(** Guard against more-specific prefix leaks overloading forwarding
    resources (the "prefix attribute" of Section 4.3). *)
module Prefix_limit_guard : sig
  val rpa : covering:Net.Prefix.t -> max_mask_length:int -> Rpa.t

  val plan :
    Topology.Graph.t ->
    covering:Net.Prefix.t ->
    max_mask_length:int ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    Controller.plan
end

(** {1 Migration orchestrators} *)

(** Scenario 1 (Section 3.2): topology expansion with first-router
    protection — Path_equalize over the layers below the expansion. *)
module Expansion_equalizer : sig
  val plan : Topology.Clos.expansion -> Controller.plan
  (** Equalizes backbone paths on the FSW and SSW layers of the Figure 2
      expansion topology. *)
end

(** Scenario 2 (Section 3.3): decommission with last-router protection —
    Min_next_hop_guard injected only into the switches being
    decommissioned. *)
module Decommission_guard : sig
  val plan :
    Topology.Graph.t ->
    destination:Destination.t ->
    threshold:Path_selection.min_next_hop ->
    decommissioned:int list ->
    origination_layer:Topology.Node.layer ->
    Controller.plan
end

(** Maintenance traffic drain (Table 1e): applies drain export policies to
    the devices under maintenance, optionally after protecting their
    neighbors with a minimum-next-hop guard. *)
module Maintenance_drain : sig
  val execute :
    Controller.t ->
    devices:int list ->
    ?guard:Controller.plan ->
    unit ->
    (unit, string list) result
  (** Deploys the guard (if any), marks the devices as in maintenance,
      applies drain policies, and converges. *)

  val undo : Controller.t -> devices:int list -> ?guard:Controller.plan ->
    unit -> (unit, string list) result
end

(** Training-job placement routing (Section 7.4, "AI backend networks"):
    pins a job's tagged prefixes onto the spine plane its collective
    traffic was placed on, falling back to any plane if the preferred one
    thins out. Built from the same path-set priority-list primitive as
    {!Backup_preference} — evidence for the paper's claim that RPA extends
    to the AI-backend use case without new mechanism. *)
module Job_placement : sig
  val rpa :
    job_tag:Net.Community.t ->
    preferred_plane:Net.Asn.t list ->
    ?plane_min_next_hop:Path_selection.min_next_hop ->
    unit ->
    Rpa.t
  (** [preferred_plane] is the ASNs of the plane's switches as seen from
      the target devices. *)

  val plan :
    Topology.Graph.t ->
    job_tag:Net.Community.t ->
    preferred_plane:int list ->
    ?plane_min_next_hop:Path_selection.min_next_hop ->
    targets:int list ->
    origination_layer:Topology.Node.layer ->
    unit ->
    Controller.plan
end

(** Gated slow roll (Section 5.1): the contrasting intended/current views
    make it trivial to pace a rollout by the fraction of managed devices
    that are out-of-sync — the roll halts when stragglers accumulate. *)
module Slow_roll : sig
  type progress = {
    applied : int;
    halted : bool;
        (** the straggler gate tripped before the plan completed *)
    out_of_sync : int list;  (** devices still diverging when it stopped *)
  }

  val execute :
    Controller.t ->
    plan:Controller.plan ->
    chunk:int ->
    max_out_of_sync:int ->
    progress
  (** Rolls the plan out [chunk] devices at a time within the safe phase
      order, letting BGP converge between chunks; halts (without touching
      the remaining devices) as soon as more than [max_out_of_sync]
      managed devices are out-of-sync. *)
end

(** Unified routing-change orchestration (Section 7.1): deploys base BGP
    policy changes and an RPA plan as one coordinated operation, so their
    interdependency cannot be violated by mismatched cadences. *)
module Policy_rollout : sig
  val execute :
    Controller.t ->
    base_policies:(int * Bgp.Policy.t) list ->
    rpa_plan:Controller.plan ->
    (unit, string list) result
  (** Applies the base egress policies first, converges, then deploys the
      RPA plan (which depends on the attributes those policies set). *)
end
