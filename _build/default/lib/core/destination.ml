type t =
  | Prefixes of Net.Prefix.t list
  | Tagged of Net.Community.t

let backbone_default = Tagged Net.Community.Well_known.backbone_default_route

let matches t prefix ~route_attrs =
  match t with
  | Prefixes covers ->
    List.exists (fun p -> Net.Prefix.contains p prefix) covers
  | Tagged community ->
    List.exists (fun attr -> Net.Attr.has_community community attr) route_attrs

let config_line = function
  | Prefixes ps ->
    Printf.sprintf "destination = [%s]"
      (String.concat ", " (List.map Net.Prefix.to_string ps))
  | Tagged c ->
    Printf.sprintf "destination = tagged(%s)" (Net.Community.to_string c)

let pp ppf t = Format.pp_print_string ppf (config_line t)

let equal a b =
  match (a, b) with
  | Prefixes x, Prefixes y -> List.equal Net.Prefix.equal x y
  | Tagged x, Tagged y -> Net.Community.equal x y
  | Prefixes _, Tagged _ | Tagged _, Prefixes _ -> false
