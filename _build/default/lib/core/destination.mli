(** The destination selector of an RPA statement.

    RPAs are "defined per group of destination prefixes that share the same
    intent" (Section 4.3). In production the group is usually named by the
    community attached at the point of origin — e.g. the snippet of
    Section 4.4 writes [Destination: "BACKBONE_DEFAULT_ROUTE"]. We support
    both that form ({!Tagged}) and explicit prefix lists. *)

type t =
  | Prefixes of Net.Prefix.t list
      (** the statement applies to prefixes covered by any entry *)
  | Tagged of Net.Community.t
      (** the statement applies to prefixes whose routes carry the
          origination community *)

val backbone_default : t
(** [Tagged Net.Community.Well_known.backbone_default_route]. *)

val matches : t -> Net.Prefix.t -> route_attrs:Net.Attr.t list -> bool
(** [route_attrs] are the attributes of the candidate routes currently known
    for the prefix (a [Tagged] destination is recognized from them). A
    [Tagged] destination with no candidate routes matches nothing. *)

val pp : Format.formatter -> t -> unit
val config_line : t -> string
val equal : t -> t -> bool
