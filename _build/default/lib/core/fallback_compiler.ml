type compiled = {
  ingress_policies : (int * int * Bgp.Policy.t) list;
  warnings : string list;
}

(* Hop distance from [device] to the nearest node of [layer], over the
   physical topology. *)
let distance_to_layer graph ~layer device =
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add (device, 0) queue;
  Hashtbl.replace visited device ();
  let rec go () =
    if Queue.is_empty queue then None
    else begin
      let v, d = Queue.pop queue in
      let node = Topology.Graph.node graph v in
      if Topology.Node.layer_equal node.Topology.Node.layer layer then Some d
      else begin
        List.iter
          (fun ((n : Topology.Node.t), _) ->
            if not (Hashtbl.mem visited n.Topology.Node.id) then begin
              Hashtbl.replace visited n.Topology.Node.id ();
              Queue.add (n.Topology.Node.id, d + 1) queue
            end)
          (Topology.Graph.all_neighbors graph v);
        go ()
      end
    end
  in
  go ()

(* The destination restriction of a compiled padding rule. *)
let match_of_destination destination =
  match destination with
  | Destination.Tagged community ->
    (fun actions -> Bgp.Policy.rule ~communities:[ community ] actions)
  | Destination.Prefixes prefixes ->
    (fun actions -> Bgp.Policy.rule ~prefixes actions)

let compile_equalize graph ~origination_layer ~targets st =
  (* For each target, pad routes from nearer upstream neighbors so every
     upstream session presents the same AS-path length. *)
  let rule_for = match_of_destination st.Path_selection.destination in
  List.concat_map
    (fun device ->
      let own_rank =
        Topology.Node.layer_rank
          (Topology.Graph.node graph device).Topology.Node.layer
      in
      let origin_rank = Topology.Node.layer_rank origination_layer in
      let upstream =
        Topology.Graph.all_neighbors graph device
        |> List.filter (fun ((n : Topology.Node.t), _) ->
               let r = Topology.Node.layer_rank n.Topology.Node.layer in
               if origin_rank >= own_rank then r > own_rank else r < own_rank)
        |> List.map (fun ((n : Topology.Node.t), _) -> n.Topology.Node.id)
      in
      let distances =
        List.filter_map
          (fun peer ->
            Option.map
              (fun d -> (peer, d))
              (distance_to_layer graph ~layer:origination_layer peer))
          upstream
      in
      match distances with
      | [] -> []
      | _ :: _ ->
        let furthest = List.fold_left (fun acc (_, d) -> max acc d) 0 distances in
        List.filter_map
          (fun (peer, d) ->
            let pad = furthest - d in
            if pad <= 0 then None
            else
              Some (device, peer, [ rule_for [ Bgp.Policy.Prepend_self pad ] ]))
          distances)
    targets

let compile graph ~origination_layer ~targets (rpa : Rpa.t) =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let policies =
    List.concat_map
      (fun (ps : Path_selection.t) ->
        List.concat_map
          (fun (st : Path_selection.statement) ->
            (match st.Path_selection.bgp_native_min_next_hop with
             | Some _ ->
               warn
                 "statement %s: BgpNativeMinNextHop has no BGP-policy \
                  equivalent (needs a vendor minimum-ECMP knob)"
                 st.Path_selection.st_name
             | None -> ());
            match st.Path_selection.path_sets with
            | [ _single ] ->
              compile_equalize graph ~origination_layer ~targets st
            | [] -> []
            | _ :: _ :: _ ->
              warn
                "statement %s: priority lists of path sets are not \
                 expressible as static policies"
                st.Path_selection.st_name;
              [])
          ps.Path_selection.statements)
      rpa.Rpa.path_selection
  in
  List.iter
    (fun (ra : Route_attribute.t) ->
      warn "RouteAttributeRpa %s: prescribed WCMP weights require daemon \
            support" ra.Route_attribute.name)
    rpa.Rpa.route_attribute;
  List.iter
    (fun (rf : Route_filter.t) ->
      warn "RouteFilterRpa %s: mask-length-bounded allow lists are only \
            approximable with prefix lists" rf.Route_filter.name)
    rpa.Rpa.route_filter;
  { ingress_policies = policies; warnings = List.rev !warnings }

let apply net compiled =
  List.iter
    (fun (device, peer, policy) ->
      Bgp.Network.set_ingress_policy net ~node:device ~peer policy)
    compiled.ingress_policies

let remove net compiled =
  List.iter
    (fun (device, peer, _) ->
      Bgp.Network.set_ingress_policy net ~node:device ~peer Bgp.Policy.empty)
    compiled.ingress_policies
