(** Pre/post-deployment network health checks (Section 5, controller
    functions 1 and 4).

    The controller verifies prerequisites before pushing RPAs (general
    network health such as congestion-freeness, expected RIB states) and
    validates expected changes afterwards (new paths selected, no funneling,
    no loss). *)

type check = { check_name : string; run : unit -> (unit, string) result }

val run_all : check list -> (string * (unit, string) result) list

val all_pass : check list -> bool

val failures : check list -> (string * string) list

(** {1 Built-in checks} *)

val route_present : Bgp.Network.t -> device:int -> Net.Prefix.t -> check

val path_count_at_least :
  Bgp.Network.t -> device:int -> Net.Prefix.t -> count:int -> check
(** The device's FIB holds at least [count] next hops for the prefix
    ("expected changes to RIB and FIB, e.g. new paths are selected"). *)

val no_loss :
  Bgp.Network.t -> Net.Prefix.t -> demands:(int * float) list -> check
(** Routing the demands drops or loops nothing. *)

val congestion_free :
  Bgp.Network.t ->
  Net.Prefix.t ->
  demands:(int * float) list ->
  members:int list ->
  max_share:float ->
  check
(** No single device of [members] carries more than [max_share] of the
    demand — the anti-funneling gate. *)

val loop_free : Bgp.Network.t -> Net.Prefix.t -> devices:int list -> check
