(** Parser for the Figure 7 RPA configuration syntax.

    Operators author RPAs as configuration (the paper reports 150+ RPA
    commits per year); this module parses the same syntax that
    {!Rpa.config_lines} renders, giving a round trip

    {[ Rpa_parser.parse (String.concat "\n" (Rpa.config_lines rpa)) ]}

    that reconstructs an equivalent RPA. Whitespace and newlines are not
    significant. The [advertise_least_favorable] dissemination flag is not
    part of the surface syntax (it is a protocol invariant, not operator
    intent) and always parses as [true]. *)

val parse : string -> (Rpa.t, string) result
(** Parses zero or more [PathSelectionRpa], [RouteAttributeRpa] and
    [RouteFilterRpa] blocks and merges them. *)

val parse_exn : string -> Rpa.t
(** Raises [Invalid_argument] with the parse error. *)
