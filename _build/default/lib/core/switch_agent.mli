(** The Switch Agent: Centralium's I/O layer (Section 5.1).

    Continuously reconciles intended state with current state by writing
    RPAs into the distributed control plane (here: installing
    {!Engine}-backed hooks into the {!Bgp.Network} speakers) and by
    polling device state back into the current view.

    Intended RPAs live in the agent's service views under
    ["devices/<id>/rpa"]. Reconciliation applies the diff; each application
    is timed (simulated RPC latency + measured apply cost), producing the
    Figure 12 deployment-time distribution. Unreachable devices become
    stragglers unless their intended operational state says they are down
    for maintenance (Section 5.2, Device Failures). *)

type t

val create : ?seed:int -> Bgp.Network.t -> t

val service : t -> Service.t
val network : t -> Bgp.Network.t

(** {1 Intended state} *)

val set_intended : t -> device:int -> Rpa.t -> unit
val clear_intended : t -> device:int -> unit
val intended_rpa : t -> device:int -> Rpa.t option
val current_rpa : t -> device:int -> Rpa.t option

val set_maintenance : t -> device:int -> bool -> unit
(** Marks the device's intended operational state as down-for-maintenance. *)

(** {1 Reachability} *)

val set_reachable : t -> device:int -> bool -> unit

val attach_management_network :
  t -> Openr.Network.t -> controller_host:int -> unit
(** After this, a device also counts as reachable only while the Open/R
    management plane has a route from [controller_host] to it — the
    production design where Centralium accesses devices via routes provided
    by Open/R, avoiding circular dependency on the BGP state it manipulates
    (Appendix A.2). *)

val unexpected_unreachable : t -> int list
(** Unreachable devices that are {e not} intended to be in maintenance —
    the ones operators must be alerted about. *)

(** {1 Reconciliation} *)

val reconcile_device : t -> int -> [ `Applied | `In_sync | `Unreachable ]
(** Applies the intended RPA of one device to its BGP speaker (via the
    network's event queue at the current virtual instant) and updates the
    current view. The measured deployment time is recorded. *)

val reconcile : t -> devices:int list -> int
(** Reconciles the given devices (in the given order); returns how many
    changed. Does not run the network — callers decide when to let BGP
    converge (e.g. between deployment phases). *)

val stragglers : t -> int list
(** Devices whose intended and current RPA differ. *)

val deploy_time_samples : t -> float list
(** Seconds per applied RPA update, most recent last (Figure 12 data). *)

val clear_deploy_times : t -> unit
