lib/core/apps.mli: Bgp Controller Destination Net Path_selection Route_filter Rpa Signature Topology
