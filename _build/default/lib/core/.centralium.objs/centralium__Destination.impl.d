lib/core/destination.ml: Format List Net Printf String
