lib/core/route_filter.ml: Format List Net Printf String Topology
