lib/core/debug.mli: Bgp Engine Format Net Switch_agent
