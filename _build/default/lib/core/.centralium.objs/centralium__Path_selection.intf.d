lib/core/path_selection.mli: Destination Format Signature
