lib/core/service.mli: Format Nsdb
