lib/core/fallback_compiler.ml: Bgp Destination Hashtbl List Option Path_selection Printf Queue Route_attribute Route_filter Rpa Topology
