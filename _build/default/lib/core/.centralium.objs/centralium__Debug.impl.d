lib/core/debug.ml: Bgp Destination Engine Format List Net Option Path_selection Rpa Signature Switch_agent Topology
