lib/core/rpa_parser.ml: Destination List Net Path_selection Printf Result Route_attribute Route_filter Rpa Signature String Topology
