lib/core/engine.mli: Bgp Rpa
