lib/core/route_filter.mli: Format Net Topology
