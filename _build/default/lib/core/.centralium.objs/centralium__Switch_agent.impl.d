lib/core/switch_agent.ml: Bgp Dsim Engine Hashtbl Int List Nsdb Openr Option Printf Rpa Service Sys Topology
