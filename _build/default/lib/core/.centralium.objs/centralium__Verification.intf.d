lib/core/verification.mli: Bgp Controller Format Health
