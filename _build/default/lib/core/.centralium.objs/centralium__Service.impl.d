lib/core/service.ml: Format Fun List Nsdb Sys
