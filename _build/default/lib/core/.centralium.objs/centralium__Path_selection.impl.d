lib/core/path_selection.ml: Destination Float Format List Printf Signature
