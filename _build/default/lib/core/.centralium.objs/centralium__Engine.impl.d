lib/core/engine.ml: Array Bgp Destination Hashtbl List Net Path_selection Route_attribute Route_filter Rpa Signature
