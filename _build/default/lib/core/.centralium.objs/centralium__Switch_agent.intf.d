lib/core/switch_agent.mli: Bgp Openr Rpa Service
