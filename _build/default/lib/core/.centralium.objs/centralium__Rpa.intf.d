lib/core/rpa.mli: Format Path_selection Route_attribute Route_filter
