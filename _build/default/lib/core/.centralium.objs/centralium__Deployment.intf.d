lib/core/deployment.mli: Topology
