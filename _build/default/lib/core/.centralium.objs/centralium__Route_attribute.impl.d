lib/core/route_attribute.ml: Destination Format List Printf Signature
