lib/core/fallback_compiler.mli: Bgp Rpa Topology
