lib/core/apps.ml: Bgp Controller Deployment Destination List Net Path_selection Printf Route_attribute Route_filter Rpa Signature Switch_agent Topology
