lib/core/controller.mli: Bgp Health Nsdb Rpa Service Switch_agent
