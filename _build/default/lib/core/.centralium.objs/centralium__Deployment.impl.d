lib/core/deployment.ml: Hashtbl Int List Topology
