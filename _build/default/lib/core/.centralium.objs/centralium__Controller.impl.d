lib/core/controller.ml: Bgp Deployment Health Int List Nsdb Printf Rpa Service Switch_agent Topology
