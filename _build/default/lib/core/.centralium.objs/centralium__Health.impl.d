lib/core/health.ml: Bgp Dataplane List Net Printf String
