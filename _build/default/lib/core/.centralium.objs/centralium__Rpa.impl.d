lib/core/rpa.ml: Format List Path_selection Route_attribute Route_filter
