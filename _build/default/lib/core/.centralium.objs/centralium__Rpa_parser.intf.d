lib/core/rpa_parser.mli: Rpa
