lib/core/signature.mli: Format Net
