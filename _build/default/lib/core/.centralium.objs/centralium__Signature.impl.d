lib/core/signature.ml: Format List Net Option Printf String
