lib/core/nsdb.ml: Array Bool Float Format Fun Hashtbl Int List Printf Rpa String
