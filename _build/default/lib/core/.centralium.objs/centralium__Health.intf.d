lib/core/health.mli: Bgp Net
