lib/core/destination.mli: Format Net
