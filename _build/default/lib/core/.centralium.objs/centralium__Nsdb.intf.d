lib/core/nsdb.mli: Format Rpa
