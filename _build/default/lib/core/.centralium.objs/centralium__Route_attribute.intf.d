lib/core/route_attribute.mli: Destination Format Net Signature
