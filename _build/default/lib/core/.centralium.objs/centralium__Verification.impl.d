lib/core/verification.ml: Apps Bgp Controller Destination Format Health List Net Path_selection Printexc Topology
