(** The common Centralium service template (Section 5.1).

    Every service — NSDB, Switch Agent, applications — is built from the
    same mold and maintains {b two contrasting network views}: an
    {e intended} state (what applications want) and a {e current} state
    (ground truth from the switches). Reconciliation is the only writer of
    current state. The contrast powers consistency guarantees (straggler
    detection), customized rollout gating, and code reuse.

    Services also account their CPU busy-time and structural memory so the
    Figure 11 scalability CDFs can be measured on this implementation. *)

type role = Storage | Io | Application of string

val role_to_string : role -> string

type t

val create : name:string -> role:role -> t

val name : t -> string
val role : t -> role

val intended : t -> Nsdb.t
val current : t -> Nsdb.t

(** {1 Consistency} *)

val out_of_sync : t -> string list
(** Paths whose intended and current values differ (missing counts as
    different) — the stragglers. *)

val sync_fraction : t -> float
(** Fraction of intended paths whose current value matches; 1.0 when fully
    reconciled (and when nothing is intended). Used to gate slow rolls. *)

(** {1 Resource accounting (Figure 11)} *)

val with_work : t -> (unit -> 'a) -> 'a
(** Runs the thunk and adds its CPU time to the service's busy counter. *)

val busy_seconds : t -> float

val cpu_utilization : t -> elapsed:float -> float
(** Single-core-equivalent utilization over an [elapsed] observation
    window. *)

val memory_bytes : t -> int
(** Structural estimate over both views plus a fixed runtime baseline. *)

(** {1 Health} *)

type health = Healthy | Degraded of string list

val health : t -> health
(** Degraded when stragglers exist. *)

val pp_health : Format.formatter -> health -> unit
