type role = Storage | Io | Application of string

let role_to_string = function
  | Storage -> "storage"
  | Io -> "io"
  | Application s -> "app:" ^ s

type t = {
  service_name : string;
  service_role : role;
  intended_view : Nsdb.t;
  current_view : Nsdb.t;
  mutable busy : float;
}

let create ~name ~role =
  {
    service_name = name;
    service_role = role;
    intended_view = Nsdb.create ();
    current_view = Nsdb.create ();
    busy = 0.0;
  }

let name t = t.service_name
let role t = t.service_role
let intended t = t.intended_view
let current t = t.current_view

let out_of_sync t =
  let intended_paths = Nsdb.paths t.intended_view in
  let current_paths = Nsdb.paths t.current_view in
  let differs path =
    match
      (Nsdb.get_one t.intended_view ~path, Nsdb.get_one t.current_view ~path)
    with
    | Some a, Some b -> not (Nsdb.value_equal a b)
    | None, None -> false
    | Some _, None | None, Some _ -> true
  in
  List.sort_uniq compare (intended_paths @ current_paths)
  |> List.filter differs

let sync_fraction t =
  let intended_paths = Nsdb.paths t.intended_view in
  match intended_paths with
  | [] -> 1.0
  | _ :: _ ->
    let in_sync =
      List.length
        (List.filter
           (fun path ->
             match
               ( Nsdb.get_one t.intended_view ~path,
                 Nsdb.get_one t.current_view ~path )
             with
             | Some a, Some b -> Nsdb.value_equal a b
             | Some _, None | None, (Some _ | None) -> false)
           intended_paths)
    in
    float_of_int in_sync /. float_of_int (List.length intended_paths)

let with_work t f =
  let start = Sys.time () in
  Fun.protect ~finally:(fun () -> t.busy <- t.busy +. (Sys.time () -. start)) f

let busy_seconds t = t.busy

let cpu_utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0 else t.busy /. elapsed

let memory_bytes t =
  (* ~64 MB runtime baseline per task, plus both views. *)
  (64 * 1024 * 1024)
  + Nsdb.memory_estimate_bytes t.intended_view
  + Nsdb.memory_estimate_bytes t.current_view

type health = Healthy | Degraded of string list

let health t =
  match out_of_sync t with [] -> Healthy | stragglers -> Degraded stragglers

let pp_health ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Degraded paths ->
    Format.fprintf ppf "degraded (%d out-of-sync paths)" (List.length paths)
