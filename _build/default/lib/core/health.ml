type check = { check_name : string; run : unit -> (unit, string) result }

let run_all checks = List.map (fun c -> (c.check_name, c.run ())) checks

let failures checks =
  List.filter_map
    (fun (name, result) ->
      match result with Ok () -> None | Error e -> Some (name, e))
    (run_all checks)

let all_pass checks = failures checks = []

let route_present network ~device prefix =
  {
    check_name = Printf.sprintf "route-present(%d, %s)" device
        (Net.Prefix.to_string prefix);
    run =
      (fun () ->
        match Bgp.Network.fib network device prefix with
        | Some _ -> Ok ()
        | None -> Error "no route in FIB");
  }

let path_count_at_least network ~device prefix ~count =
  {
    check_name = Printf.sprintf "path-count(%d, %s) >= %d" device
        (Net.Prefix.to_string prefix) count;
    run =
      (fun () ->
        match Bgp.Network.fib network device prefix with
        | Some Bgp.Speaker.Local -> Ok ()
        | Some (Bgp.Speaker.Entries entries) ->
          if List.length entries >= count then Ok ()
          else
            Error
              (Printf.sprintf "only %d next hops" (List.length entries))
        | None -> Error "no route in FIB");
  }

let no_loss network prefix ~demands =
  {
    check_name = Printf.sprintf "no-loss(%s)" (Net.Prefix.to_string prefix);
    run =
      (fun () ->
        let result = Dataplane.Traffic.route_prefix network prefix ~demands in
        let total = Dataplane.Traffic.total_demand demands in
        let lost = Dataplane.Metrics.loss_fraction result ~total in
        if lost <= 1e-9 then Ok ()
        else Error (Printf.sprintf "%.1f%% of demand lost" (100.0 *. lost)));
  }

let congestion_free network prefix ~demands ~members ~max_share =
  {
    check_name =
      Printf.sprintf "congestion-free(%s, share <= %.2f)"
        (Net.Prefix.to_string prefix) max_share;
    run =
      (fun () ->
        let result = Dataplane.Traffic.route_prefix network prefix ~demands in
        let total = Dataplane.Traffic.total_demand demands in
        let share = Dataplane.Metrics.funneling result ~members ~total in
        if share <= max_share +. 1e-9 then Ok ()
        else
          Error
            (Printf.sprintf "device carries %.0f%% of demand" (100.0 *. share)));
  }

let loop_free network prefix ~devices =
  {
    check_name = Printf.sprintf "loop-free(%s)" (Net.Prefix.to_string prefix);
    run =
      (fun () ->
        let loops =
          Dataplane.Metrics.find_forwarding_loops
            ~lookup:(fun device -> Bgp.Network.fib network device prefix)
            ~devices
        in
        match loops with
        | [] -> Ok ()
        | cycle :: _ ->
          Error
            (Printf.sprintf "forwarding loop through [%s]"
               (String.concat "; " (List.map string_of_int cycle))));
  }
