type plan = {
  plan_name : string;
  rpas : (int * Rpa.t) list;
  phases : int list list;
  pre_checks : Health.check list;
  post_checks : Health.check list;
}

let plan_loc plan =
  plan.rpas
  |> List.map (fun (_, rpa) -> Rpa.config_lines rpa)
  |> List.sort_uniq compare
  |> List.fold_left (fun acc lines -> acc + List.length lines) 0

type report = {
  applied : int;
  skipped_in_sync : int;
  unreachable : int list;
  deploy_seconds : float list;
}

type t = {
  net : Bgp.Network.t;
  switch_agent : Switch_agent.t;
  state_db : Nsdb.Replicated.t;
  nsdb_service : Service.t;
}

let create ?seed net =
  {
    net;
    switch_agent = Switch_agent.create ?seed net;
    state_db = Nsdb.Replicated.create ~replicas:2;
    nsdb_service = Service.create ~name:"nsdb" ~role:Service.Storage;
  }

let network t = t.net
let agent t = t.switch_agent
let nsdb t = t.state_db

let services t = [ t.nsdb_service; Switch_agent.service t.switch_agent ]

let validate_plan t plan =
  let plan_devices = List.sort Int.compare (List.map fst plan.rpas) in
  let phase_devices =
    List.sort Int.compare (Deployment.flatten plan.phases)
  in
  if plan_devices <> phase_devices then
    Error
      (Printf.sprintf "plan %s: phases do not cover exactly the plan devices"
         plan.plan_name)
  else
    match
      List.find_opt
        (fun d -> Topology.Graph.node_opt (Bgp.Network.graph t.net) d = None)
        plan_devices
    with
    | Some d -> Error (Printf.sprintf "plan %s: unknown device %d" plan.plan_name d)
    | None ->
      (match
         List.find_opt
           (fun d -> List.length (List.filter (Int.equal d) plan_devices) > 1)
           plan_devices
       with
       | Some d ->
         Error (Printf.sprintf "plan %s: device %d has multiple RPAs (merge them)"
                  plan.plan_name d)
       | None -> Ok ())

let record_plan t plan =
  (* The replicated NSDB keeps the fleet-wide intent for audit/consistency. *)
  List.iter
    (fun (device, rpa) ->
      Service.with_work t.nsdb_service (fun () ->
          Nsdb.Replicated.set t.state_db
            ~path:(Printf.sprintf "plans/%s/devices/%d" plan.plan_name device)
            (Nsdb.Rpa rpa)))
    plan.rpas

let run_phases t ~phases ~intent_of =
  let applied = ref 0 and in_sync = ref 0 in
  let unreachable = ref [] in
  List.iter
    (fun phase ->
      List.iter
        (fun device ->
          (match intent_of device with
           | Some rpa -> Switch_agent.set_intended t.switch_agent ~device rpa
           | None -> Switch_agent.clear_intended t.switch_agent ~device);
          match Switch_agent.reconcile_device t.switch_agent device with
          | `Applied -> incr applied
          | `In_sync -> incr in_sync
          | `Unreachable -> unreachable := device :: !unreachable)
        phase;
      (* Let BGP converge before the next phase picks up the RPA
         (Section 5.3.2: every layer must receive the new RPA after all
         their downstream peers have). *)
      ignore (Bgp.Network.converge t.net))
    phases;
  (!applied, !in_sync, List.rev !unreachable)

let deploy t plan =
  match validate_plan t plan with
  | Error e -> Error [ e ]
  | Ok () ->
    (match Health.failures plan.pre_checks with
     | _ :: _ as failures ->
       Error
         (List.map (fun (name, e) -> Printf.sprintf "pre-check %s: %s" name e)
            failures)
     | [] ->
       record_plan t plan;
       Switch_agent.clear_deploy_times t.switch_agent;
       let applied, skipped, unreachable =
         run_phases t ~phases:plan.phases ~intent_of:(fun device ->
             List.assoc_opt device plan.rpas)
       in
       let report =
         {
           applied;
           skipped_in_sync = skipped;
           unreachable;
           deploy_seconds = Switch_agent.deploy_time_samples t.switch_agent;
         }
       in
       (match Health.failures plan.post_checks with
        | [] -> Ok report
        | failures ->
          Error
            (List.map
               (fun (name, e) -> Printf.sprintf "post-check %s: %s" name e)
               failures)))

let remove t plan =
  match validate_plan t plan with
  | Error e -> Error [ e ]
  | Ok () ->
    Switch_agent.clear_deploy_times t.switch_agent;
    let applied, skipped, unreachable =
      run_phases t ~phases:(List.rev plan.phases) ~intent_of:(fun _ -> None)
    in
    List.iter
      (fun (device, _) ->
        Service.with_work t.nsdb_service (fun () ->
            Nsdb.Replicated.set t.state_db
              ~path:(Printf.sprintf "plans/%s/devices/%d" plan.plan_name device)
              (Nsdb.Rpa Rpa.empty)))
      plan.rpas;
    Ok
      {
        applied;
        skipped_in_sync = skipped;
        unreachable;
        deploy_seconds = Switch_agent.deploy_time_samples t.switch_agent;
      }
