(** The Centralium controller: applications over NSDB over Switch Agent
    (Figure 8), providing the five critical functions of Section 5:
    pre-deployment health checks, per-switch RPA generation, coordinated
    phased deployment, post-deployment checks, and fleet consistency.

    Applications compile an operator intent into a {!plan}; {!deploy}
    executes it safely: pre-checks, write intended state, reconcile phase
    by phase with BGP convergence in between, post-checks. *)

type plan = {
  plan_name : string;
  rpas : (int * Rpa.t) list;  (** per-device generated RPAs *)
  phases : int list list;
      (** deployment order, from {!Deployment.phases}; every device in
          [rpas] must appear in exactly one phase *)
  pre_checks : Health.check list;
  post_checks : Health.check list;
}

val plan_loc : plan -> int
(** Total rendered LOC of the distinct RPAs in the plan (Table 3's
    "RPA LOC"). Identical per-device RPAs are counted once, matching how
    operators author one RPA template per layer. *)

type report = {
  applied : int;
  skipped_in_sync : int;
  unreachable : int list;
  deploy_seconds : float list;  (** per applied device (Figure 12 samples) *)
}

type t

val create : ?seed:int -> Bgp.Network.t -> t

val network : t -> Bgp.Network.t
val agent : t -> Switch_agent.t
val nsdb : t -> Nsdb.Replicated.t

val services : t -> Service.t list
(** All service tasks of this controller deployment (for Figure 11). *)

val deploy : t -> plan -> (report, string list) result
(** Runs pre-checks (failures abort with their messages), writes intended
    state, reconciles phase by phase letting the network converge after
    each phase, runs post-checks (failures are returned as [Error] but the
    deployment is kept — mirroring production, where post-check failures
    page operators rather than auto-revert). *)

val remove : t -> plan -> (report, string list) result
(** Removes the plan's RPAs in the {e reverse} phase order (the
    Section 5.3.2 removal rule), restoring native BGP. *)

val validate_plan : t -> plan -> (unit, string) result
(** Structural validation: phases cover exactly the plan's devices, and
    every device exists in the network. *)
