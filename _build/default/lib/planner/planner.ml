type step_kind =
  | Config_push
  | Rpa_push
  | Rpa_slow_roll of float
  | Physical_work of float
  | Drain_op

type step = { label : string; kind : step_kind }

type migration_plan = { steps : step list }

let push_cadence_days = 21.0

let step_days = function
  | Config_push -> push_cadence_days
  | Rpa_push -> 0.02 (* tens of minutes including checks *)
  | Rpa_slow_roll days -> days
  | Physical_work days -> days
  | Drain_op -> 0.04 (* an hour *)

let step_count plan = List.length plan.steps

let duration_days plan =
  List.fold_left (fun acc s -> acc +. step_days s.kind) 0.0 plan.steps

type comparison = {
  category : Topology.Migration.category;
  without_rpa : migration_plan;
  with_rpa : migration_plan;
  rpa_loc : int;
}

let step label kind = { label; kind }

(* ------------------------------------------------------------------ *)
(* Representative RPAs per category, built from the real application
   compilers so the LOC numbers are measured, not asserted. *)

let asn i = Net.Asn.of_int (65000 + i)

let destination_group i =
  Centralium.Destination.Tagged (Net.Community.make 65100 (100 + i))

let representative_rpa category =
  let open Centralium in
  match category with
  | Topology.Migration.Routing_system_evolution ->
    (* A routing-design overhaul re-expresses path selection for the full
       catalog of destination intents: tens of destination groups, each
       with primary and fallback path sets. *)
    let statements =
      List.init 36 (fun i ->
          Path_selection.statement
            ~name:(Printf.sprintf "group-%d" i)
            ~path_sets:
              [
                Path_selection.path_set ~name:"preferred"
                  (Signature.make ~origin_asn:(asn i)
                     ~communities:[ Net.Community.make 65100 (100 + i) ]
                     ());
                Path_selection.path_set ~name:"fallback"
                  ~min_next_hop:(Path_selection.Count 2)
                  (Signature.make
                     ~as_path_regex:(Printf.sprintf ".* %d$" (65000 + i))
                     ());
              ]
            (destination_group i))
    in
    Rpa.make
      ~path_selection:[ Path_selection.make ~name:"routing-evolution" statements ]
      ()
  | Topology.Migration.Incremental_capacity_scaling ->
    (* Expansion protection: equalize old and new fabric paths for the
       production destination groups, plus funneling guards. *)
    let equalize =
      List.init 18 (fun i ->
          Path_selection.statement
            ~name:(Printf.sprintf "equalize-%d" i)
            ~path_sets:
              [
                Path_selection.path_set ~name:"same-origin"
                  (Signature.make ~origin_asn:(asn i) ());
              ]
            (destination_group i))
    in
    let guards =
      List.init 10 (fun i ->
          Path_selection.statement
            ~name:(Printf.sprintf "guard-%d" i)
            ~path_sets:[]
            ~bgp_native_min_next_hop:(Path_selection.Fraction 0.75)
            ~keep_fib_warm_if_mnh_violated:true (destination_group i))
    in
    Rpa.make
      ~path_selection:
        [ Path_selection.make ~name:"capacity-scaling" (equalize @ guards) ]
      ()
  | Topology.Migration.Differential_traffic_distribution ->
    (* Pin a handful of anycast/service destination groups. *)
    let statements =
      List.init 6 (fun i ->
          Path_selection.statement
            ~name:(Printf.sprintf "pin-%d" i)
            ~path_sets:
              [
                Path_selection.path_set ~name:"stable"
                  (Signature.make ~origin_asn:(asn i) ());
              ]
            (destination_group i))
    in
    Rpa.make
      ~path_selection:[ Path_selection.make ~name:"differential" statements ]
      ()
  | Topology.Migration.Routing_policy_transitions ->
    (* Conditional primary/backup preferences for ~10 service groups. *)
    let statements =
      List.init 10 (fun i ->
          Path_selection.statement
            ~name:(Printf.sprintf "pref-%d" i)
            ~path_sets:
              [
                Path_selection.path_set ~name:"primary"
                  ~min_next_hop:(Path_selection.Count 2)
                  (Signature.make ~neighbor_asn:(asn i) ());
                Path_selection.path_set ~name:"backup"
                  (Signature.make ~neighbor_asn:(asn (i + 50)) ());
              ]
            (destination_group i))
    in
    Rpa.make
      ~path_selection:[ Path_selection.make ~name:"policy-transition" statements ]
      ()
  | Topology.Migration.Traffic_drain_for_maintenance ->
    (* A single funneling guard around the drain. *)
    Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
      ~threshold:(Path_selection.Fraction 0.5) ~keep_fib_warm:true

(* ------------------------------------------------------------------ *)
(* Step sequences. Without RPA, every transitory behaviour change is a
   policy (config) push riding the 3-week cadence, and each push that must
   land before the next can start sits on the critical path. *)

let plans category =
  match category with
  | Topology.Migration.Routing_system_evolution ->
    ( {
        steps =
          [
            step "push new routing policy fleet-wide" Config_push;
            step "push cleanup of transition knobs" Config_push;
          ];
      },
      { steps = [ step "deploy routing-evolution RPAs" Rpa_push ] } )
  | Topology.Migration.Incremental_capacity_scaling ->
    ( {
        steps =
          [
            step "push AS-path padding policy on SSWs" Config_push;
            step "stage-1 wiring of new layer" Config_push;
            step "push policy update admitting new layer" Config_push;
            step "stage-2 wiring" Config_push;
            step "push policy rebalance" Config_push;
            step "stage-3 wiring / removal of old layer" Config_push;
            step "push removal of padding (risk: re-funnel)" Config_push;
            step "push cleanup of transitory policies" Config_push;
            step "push final topology policy" Config_push;
          ];
      },
      {
        steps =
          [
            step "deploy path-equalize + guard RPAs" Rpa_push;
            step "physical build-out (all stages, protected)" (Physical_work 21.0);
            step "remove RPAs top-down" Rpa_push;
          ];
      } )
  | Topology.Migration.Differential_traffic_distribution ->
    ( {
        steps =
          [
            step "push service-specific policy" Config_push;
            step "push preference adjustment after validation" Config_push;
            step "push cleanup" Config_push;
          ];
      },
      {
        steps =
          [ step "slow-roll differential RPAs per pod" (Rpa_slow_roll 7.0) ];
      } )
  | Topology.Migration.Routing_policy_transitions ->
    ( {
        steps =
          [
            step "push backup policy scaffolding" Config_push;
            step "push primary preference change" Config_push;
            step "push dependent-layer adjustment" Config_push;
            step "push verification knobs" Config_push;
            step "push cleanup" Config_push;
          ];
      },
      {
        steps =
          [
            step "deploy backup-preference RPAs" Rpa_push;
            step "coordinated base-policy push" Config_push;
            step "remove transition RPAs" Rpa_push;
          ];
      } )
  | Topology.Migration.Traffic_drain_for_maintenance ->
    ( {
        steps =
          [
            step "drain devices" Drain_op;
            step "verify and hold" Drain_op;
            step "undrain devices" Drain_op;
          ];
      },
      { steps = [ step "guard-protected drain via controller" Rpa_push ] } )

let compare_category category =
  let without_rpa, with_rpa = plans category in
  {
    category;
    without_rpa;
    with_rpa;
    rpa_loc = Centralium.Rpa.loc (representative_rpa category);
  }

let table3 () = List.map compare_category Topology.Migration.all_categories
