(** Migration planning: critical-path steps and days, with and without RPA
    (Table 3).

    The paper derives migration duration from the number of {e strictly
    in-order} steps on the critical path and the fleet's configuration push
    cadence of three weeks [1]. Config/binary changes ride that cadence;
    RPA pushes go through Centralium in milliseconds-to-hours; some RPA
    rollouts are deliberately slow-rolled for safety. This module models
    migrations as explicit step sequences so the with/without-RPA contrast
    is auditable, and measures "RPA LOC" on representative generated RPAs
    rather than quoting constants. *)

type step_kind =
  | Config_push
      (** a BGP policy/binary change riding the fleet push cadence *)
  | Rpa_push  (** a Centralium RPA deployment: minutes, rounds to < 1 day *)
  | Rpa_slow_roll of float
      (** an intentionally gradual RPA rollout gated on sync fraction;
          payload = days *)
  | Physical_work of float
      (** on-site cabling/rack work; payload = days. When not protected by
          RPA, each physical stage must additionally be bracketed by
          transitory policies, which the step lists below include as
          explicit [Config_push]es *)
  | Drain_op  (** a traffic drain/undrain; under an hour *)

type step = { label : string; kind : step_kind }

type migration_plan = { steps : step list }

val push_cadence_days : float
(** 21 days (our average push cadence of three weeks, Section 6.3). *)

val step_days : step_kind -> float

val step_count : migration_plan -> int

val duration_days : migration_plan -> float
(** Sum over the critical path. *)

type comparison = {
  category : Topology.Migration.category;
  without_rpa : migration_plan;
  with_rpa : migration_plan;
  rpa_loc : int;  (** measured on the generated representative RPAs *)
}

val compare_category : Topology.Migration.category -> comparison

val table3 : unit -> comparison list
(** One row per Table 1 category, ordered (a) to (e). *)

val representative_rpa : Topology.Migration.category -> Centralium.Rpa.t
(** The RPA set a migration of this category typically ships, generated
    with realistic numbers of destination groups; its rendered line count
    is the [rpa_loc] of {!compare_category}. *)
