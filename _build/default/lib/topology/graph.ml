type link = {
  a : Net.Route.device;
  b : Net.Route.device;
  capacity : float;
  sessions : int;
  mutable up : bool;
}

type t = {
  node_table : (int, Node.t) Hashtbl.t;
  adjacency : (int, (int, link) Hashtbl.t) Hashtbl.t;
}

let create () = { node_table = Hashtbl.create 64; adjacency = Hashtbl.create 64 }

let add_node t node =
  if Hashtbl.mem t.node_table node.Node.id then
    invalid_arg (Printf.sprintf "Graph.add_node: duplicate id %d" node.Node.id);
  Hashtbl.replace t.node_table node.Node.id node;
  Hashtbl.replace t.adjacency node.Node.id (Hashtbl.create 8)

let adjacency_of t id =
  match Hashtbl.find_opt t.adjacency id with
  | Some adj -> adj
  | None -> invalid_arg (Printf.sprintf "Graph: unknown node %d" id)

let add_link ?(capacity = 1.0) ?(sessions = 1) t a b =
  if a = b then invalid_arg "Graph.add_link: self loop";
  if not (Hashtbl.mem t.node_table a) then
    invalid_arg (Printf.sprintf "Graph.add_link: unknown node %d" a);
  if not (Hashtbl.mem t.node_table b) then
    invalid_arg (Printf.sprintf "Graph.add_link: unknown node %d" b);
  let adj_a = adjacency_of t a in
  if Hashtbl.mem adj_a b then
    invalid_arg (Printf.sprintf "Graph.add_link: duplicate link %d-%d" a b);
  let link = { a; b; capacity; sessions; up = true } in
  Hashtbl.replace adj_a b link;
  Hashtbl.replace (adjacency_of t b) a link

let node t id =
  match Hashtbl.find_opt t.node_table id with
  | Some n -> n
  | None -> raise Not_found

let node_opt t id = Hashtbl.find_opt t.node_table id

let nodes t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.node_table []
  |> List.sort Node.compare

let node_count t = Hashtbl.length t.node_table

let links t =
  Hashtbl.fold
    (fun id adj acc ->
      Hashtbl.fold
        (fun peer link acc -> if id < peer then link :: acc else acc)
        adj acc)
    t.adjacency []
  |> List.sort (fun l r -> compare (l.a, l.b) (r.a, r.b))

let find_link t a b =
  match Hashtbl.find_opt t.adjacency a with
  | None -> None
  | Some adj -> Hashtbl.find_opt adj b

let all_neighbors t id =
  let adj = adjacency_of t id in
  Hashtbl.fold (fun peer link acc -> (node t peer, link) :: acc) adj []
  |> List.sort (fun (a, _) (b, _) -> Node.compare a b)

let neighbors t id =
  List.filter (fun ((_ : Node.t), link) -> link.up) (all_neighbors t id)

let set_link_up t a b up =
  match find_link t a b with
  | None -> raise Not_found
  | Some link -> link.up <- up

let remove_node t id =
  (match Hashtbl.find_opt t.adjacency id with
   | None -> ()
   | Some adj ->
     Hashtbl.iter
       (fun peer _ ->
         match Hashtbl.find_opt t.adjacency peer with
         | Some peer_adj -> Hashtbl.remove peer_adj id
         | None -> ())
       adj);
  Hashtbl.remove t.adjacency id;
  Hashtbl.remove t.node_table id

let by_layer t layer =
  List.filter (fun n -> Node.layer_equal n.Node.layer layer) (nodes t)

let layers t =
  nodes t
  |> List.map (fun n -> n.Node.layer)
  |> List.sort_uniq (fun a b ->
         let c = Int.compare (Node.layer_rank a) (Node.layer_rank b) in
         if c <> 0 then c
         else compare (Node.layer_to_string a) (Node.layer_to_string b))

let degree_up t id =
  List.length (neighbors t id)

let pp_stats ppf t =
  let link_list = links t in
  let up = List.length (List.filter (fun l -> l.up) link_list) in
  Format.fprintf ppf "%d nodes, %d links (%d up)" (node_count t)
    (List.length link_list) up
