(** Mutable network topology: nodes, links, liveness.

    Links are bidirectional, carry a capacity (in abstract Gbps units) and a
    session count ([sessions]), because several paper scenarios (Figure 5)
    hinge on multiple parallel BGP sessions between the same two devices.
    Migration operations mutate the graph in place (drain, remove, insert)
    while the BGP layer reacts to change notifications. *)

type link = {
  a : Net.Route.device;
  b : Net.Route.device;
  capacity : float;
  sessions : int;
  mutable up : bool;
}

type t

val create : unit -> t

val add_node : t -> Node.t -> unit
(** Raises [Invalid_argument] on duplicate id. *)

val add_link : ?capacity:float -> ?sessions:int -> t -> int -> int -> unit
(** [add_link g a b]: defaults capacity 1.0, 1 session. Raises
    [Invalid_argument] if either endpoint is unknown, if [a = b], or if the
    link already exists. *)

val node : t -> int -> Node.t
(** Raises [Not_found]. *)

val node_opt : t -> int -> Node.t option

val nodes : t -> Node.t list
(** All nodes, sorted by id. *)

val node_count : t -> int

val links : t -> link list

val find_link : t -> int -> int -> link option

val neighbors : t -> int -> (Node.t * link) list
(** Neighbors reachable over {e up} links, sorted by id. *)

val all_neighbors : t -> int -> (Node.t * link) list
(** Including down links. *)

val set_link_up : t -> int -> int -> bool -> unit
(** Raises [Not_found] if the link does not exist. *)

val remove_node : t -> int -> unit
(** Removes the node and all incident links. *)

val by_layer : t -> Node.layer -> Node.t list

val layers : t -> Node.layer list
(** Distinct layers present, sorted bottom-to-top by {!Node.layer_rank}. *)

val degree_up : t -> int -> int
(** Number of live incident links. *)

val pp_stats : Format.formatter -> t -> unit
