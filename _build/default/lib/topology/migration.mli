(** Migration taxonomy and scale quantification (Table 1, Figure 3).

    The paper characterizes five categories of production migrations. This
    module carries the taxonomy's published constants and a generator that
    instantiates migrations against a synthetic fleet to quantify how many
    switches each category touches per layer. *)

type category =
  | Routing_system_evolution          (** (a) *)
  | Incremental_capacity_scaling      (** (b) *)
  | Differential_traffic_distribution (** (c) *)
  | Routing_policy_transitions        (** (d) *)
  | Traffic_drain_for_maintenance     (** (e) *)

val all_categories : category list
val category_label : category -> string
val category_letter : category -> string

type frequency = Per_year of int | Daily

type scope = Multi_dc | Sub_dc

type row = {
  category : category;
  frequency : frequency;
  scope : scope;
  typical_duration_days : float;
}

val table1 : row list
(** The published characterization (Table 1). *)

val pp_frequency : Format.formatter -> frequency -> unit
val pp_scope : Format.formatter -> scope -> unit

(** A synthetic fleet, described arithmetically (the Figure 3 numbers only
    need per-layer switch counts, not wired graphs). *)
type fleet_spec = {
  dcs : int;
  pods_per_dc : int;
  rsws_per_pod : int;
  fsws_per_pod : int;  (** also the number of spine planes *)
  ssws_per_plane : int;
  grids_per_dc : int;
  fauus_per_grid : int;
}

val default_fleet : fleet_spec
(** Sized so fleet-wide migrations involve tens of thousands of switches,
    matching the paper's quantification. *)

val layer_counts : fleet_spec -> (Node.layer * int) list
(** Total switches per layer for one DC times [dcs]. *)

(** How each category selects switches, following Section 3.1:
    - Routing System Evolution: fleet-wide policy update — every switch of
      every DC;
    - Incremental Capacity Scaling: topology overhaul of a subset of DCs —
      all layers of the affected DCs;
    - Differential Traffic Distribution: sub-DC — the pods of one DC that
      host the service, plus the spine planes they ride on;
    - Routing Policy Transitions: multi-DC, fabric layers and above (RSWs
      keep their policy);
    - Traffic Drain for Maintenance: one spine plane of one DC plus the
      FADUs it connects to (hundreds of switches). *)
val switches_involved :
  rng:Dsim.Rng.t -> fleet_spec -> category -> (Node.layer * int) list

val average_switches_per_layer :
  ?samples:int -> rng:Dsim.Rng.t -> fleet_spec -> category ->
  (Node.layer * float) list
(** Monte-Carlo average over migration instances (Figure 3 bars). *)
