(** Builders for the paper's topologies.

    Each builder returns the graph plus named handles to the node groups the
    corresponding experiment manipulates. Node ids are dense from 0 so they
    can index arrays in the BGP and data-plane layers. *)

(** {1 Figure 1: the full five-layer fabric} *)

type fabric = {
  graph : Graph.t;
  rsws : int list;
  fsws : int list;
  ssws : int list;
  fadus : int list;
  fauus : int list;
  ebs : int list;
}

val fabric :
  ?pods:int ->
  ?rsws_per_pod:int ->
  ?fsws_per_pod:int ->
  ?ssws_per_plane:int ->
  ?grids:int ->
  ?fauus_per_grid:int ->
  ?ebs:int ->
  unit ->
  fabric
(** Wiring follows Appendix A.1: every RSW connects to all FSWs of its pod;
    FSW number [i] of each pod connects to all SSWs of plane [i] (so the
    number of planes equals [fsws_per_pod]); SSW number [n] of every plane
    connects to FADU number [n] of every grid (so each grid has
    [ssws_per_plane] FADUs); FADUs and FAUUs of a grid are fully meshed;
    every FAUU connects to every EB. Defaults build a small but complete
    fabric: 4 pods x 4 RSW x 4 FSW, 4 planes x 4 SSW, 2 grids, 2 FAUU/grid,
    4 EB. *)

(** {1 Figure 2: capacity expansion replacing FAv1 + Edge with FAv2} *)

type expansion = {
  xgraph : Graph.t;
  xfsws : int list;
  xssws : int list;
  fav1 : int list;
  edge : int list;
  backbone : int;  (** origin of the default route *)
  mutable fav2 : int list;  (** grows as {!add_fav2} is called *)
}

val expansion :
  ?fsws:int -> ?ssws:int -> ?fav1:int -> ?edge:int -> unit -> expansion
(** Initial state: FSWs - SSWs - FAv1 - Edge - backbone, with full bipartite
    wiring between consecutive layers. The default route reaches an SSW with
    AS-path length 3 (FAv1, Edge, BB). *)

val add_fav2 : expansion -> int
(** Activates one new FAv2 switch wired to every SSW and to the backbone,
    creating the shorter (length 2) path of the transitory state of
    Figure 2. Returns its node id. *)

(** {1 Figure 4: SSW/FADU decommission mesh} *)

type decommission = {
  dgraph : Graph.t;
  planes : int list list;  (** [planes.(p)] = SSW ids of plane [p], by number *)
  grids : int list list;   (** [grids.(g)] = FADU ids of grid [g], by number *)
  north_origin : int;      (** virtual backbone node above all FADUs *)
  south_origin : int;      (** virtual rack node below all SSWs *)
}

val decommission : ?planes:int -> ?grids:int -> ?per:int -> unit -> decommission
(** [per] SSWs per plane and FADUs per grid; SSW number [n] of every plane
    connects only to FADU number [n] of every grid (the Figure 4 wiring). *)

val ssws_numbered : decommission -> int -> int list
(** All SSW-[n] across planes. *)

val fadus_numbered : decommission -> int -> int list
(** All FADU-[n] across grids. *)

(** {1 Figure 5: EB - UU - DU with parallel sessions} *)

type wcmp_convergence = {
  wgraph : Graph.t;
  ebs : int list;   (** 8 backbone devices originating the prefixes *)
  uus : int list;   (** 4 uplink units *)
  dus : int list;   (** downlink units; two sessions per UU-DU pair *)
}

val wcmp_convergence : ?ebs:int -> ?uus:int -> ?dus:int -> unit -> wcmp_convergence

(** {1 Figure 9: mixed RPA / native speakers} *)

type mixed = {
  mgraph : Graph.t;
  origin : int;  (** upstream origin of prefix D, peer of R1 *)
  r : int array; (** [r.(1)] … [r.(6)]; index 0 unused *)
}

val mixed_dissemination : unit -> mixed
(** Edges: origin-R1, R1-R2, R2-R6, R1-R3, R3-R4, R4-R5, R5-R6. R6 sees
    prefix D via R2 (short) and via R5 (long). *)

(** {1 Figure 10: FA / DMAG rollout topology} *)

type rollout = {
  rgraph : Graph.t;
  rbackbone : int;
  rfas : int list;   (** FA1, FA2: direct path to backbone *)
  rdmag : int;       (** backup aggregation: FA-DMAG-backbone *)
  rssws : int list;
  rfsws : int list;
}

val rollout : ?ssws:int -> ?fsws:int -> unit -> rollout

(** {1 Figure 14: SEV topology (misconfigured KeepFibWarm)} *)

type sev = {
  sgraph : Graph.t;
  sbackbone : int;
  sfas : int list;     (** last element is the not-production-ready FA *)
  bad_fa : int;
  sssws : int list;
  sfsws : int list;
}

val sev : ?fas:int -> ?ssws:int -> ?fsws:int -> unit -> sev
(** All FAs connect to SSWs below; all but [bad_fa] also connect to the
    backbone above (the bad FA is missing its backbone cabling). *)
