lib/topology/node.mli: Format Net
