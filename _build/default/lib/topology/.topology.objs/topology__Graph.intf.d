lib/topology/graph.mli: Format Net Node
