lib/topology/node.ml: Format Int Net String
