lib/topology/migration.mli: Dsim Format Node
