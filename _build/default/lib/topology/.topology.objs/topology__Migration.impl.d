lib/topology/migration.ml: Dsim Format Hashtbl List Node
