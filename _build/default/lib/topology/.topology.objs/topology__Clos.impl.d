lib/topology/clos.ml: Array Graph List Node Printf
