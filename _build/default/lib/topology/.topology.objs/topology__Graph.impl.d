lib/topology/graph.ml: Format Hashtbl Int List Net Node Printf
