lib/topology/clos.mli: Graph
