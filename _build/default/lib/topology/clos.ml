(* Node-id allocation is sequential per builder so ids are dense. *)

type allocator = { graph : Graph.t; mutable next_id : int }

let fresh graph = { graph; next_id = 0 }

let new_node alloc ~name ~layer ?pod ?plane ?grid () =
  let id = alloc.next_id in
  alloc.next_id <- id + 1;
  Graph.add_node alloc.graph (Node.make ~id ~name ~layer ?pod ?plane ?grid ());
  id

let connect ?capacity ?sessions alloc a b =
  Graph.add_link ?capacity ?sessions alloc.graph a b

(* ------------------------------------------------------------------ *)

type fabric = {
  graph : Graph.t;
  rsws : int list;
  fsws : int list;
  ssws : int list;
  fadus : int list;
  fauus : int list;
  ebs : int list;
}

let fabric ?(pods = 4) ?(rsws_per_pod = 4) ?(fsws_per_pod = 4)
    ?(ssws_per_plane = 4) ?(grids = 2) ?(fauus_per_grid = 2) ?(ebs = 4) () =
  let alloc = fresh (Graph.create ()) in
  let planes = fsws_per_pod in
  (* Per-pod RSWs and FSWs. *)
  let pod_fsws =
    List.init pods (fun p ->
        List.init fsws_per_pod (fun i ->
            new_node alloc
              ~name:(Printf.sprintf "fsw-%d-%d" p i)
              ~layer:Node.Fsw ~pod:p ~plane:i ()))
  in
  let pod_rsws =
    List.init pods (fun p ->
        List.init rsws_per_pod (fun i ->
            let rsw =
              new_node alloc
                ~name:(Printf.sprintf "rsw-%d-%d" p i)
                ~layer:Node.Rsw ~pod:p ()
            in
            List.iter (fun fsw -> connect alloc rsw fsw) (List.nth pod_fsws p);
            rsw))
  in
  (* Spine planes. *)
  let plane_ssws =
    List.init planes (fun pl ->
        List.init ssws_per_plane (fun n ->
            new_node alloc
              ~name:(Printf.sprintf "ssw-%d-%d" pl n)
              ~layer:Node.Ssw ~plane:pl ()))
  in
  (* FSW i of each pod connects to all SSWs of plane i. *)
  List.iter
    (fun fsws ->
      List.iteri
        (fun i fsw ->
          List.iter (fun ssw -> connect alloc fsw ssw) (List.nth plane_ssws i))
        fsws)
    pod_fsws;
  (* Grids: FADUs indexed like SSWs within a plane, plus FAUUs. *)
  let grid_fadus =
    List.init grids (fun g ->
        List.init ssws_per_plane (fun n ->
            new_node alloc
              ~name:(Printf.sprintf "fadu-%d-%d" g n)
              ~layer:Node.Fadu ~grid:g ()))
  in
  (* SSW n of every plane connects to FADU n of every grid. *)
  List.iter
    (fun ssws ->
      List.iteri
        (fun n ssw ->
          List.iter
            (fun fadus -> connect alloc ssw (List.nth fadus n))
            grid_fadus)
        ssws)
    plane_ssws;
  let grid_fauus =
    List.init grids (fun g ->
        List.init fauus_per_grid (fun i ->
            let fauu =
              new_node alloc
                ~name:(Printf.sprintf "fauu-%d-%d" g i)
                ~layer:Node.Fauu ~grid:g ()
            in
            List.iter
              (fun fadu -> connect alloc fauu fadu)
              (List.nth grid_fadus g);
            fauu))
  in
  let eb_ids =
    List.init ebs (fun i ->
        let eb =
          new_node alloc ~name:(Printf.sprintf "eb-%d" i) ~layer:Node.Eb ()
        in
        List.iter
          (fun fauus -> List.iter (fun fauu -> connect alloc eb fauu) fauus)
          grid_fauus;
        eb)
  in
  {
    graph = alloc.graph;
    rsws = List.concat pod_rsws;
    fsws = List.concat pod_fsws;
    ssws = List.concat plane_ssws;
    fadus = List.concat grid_fadus;
    fauus = List.concat grid_fauus;
    ebs = eb_ids;
  }

(* ------------------------------------------------------------------ *)

type expansion = {
  xgraph : Graph.t;
  xfsws : int list;
  xssws : int list;
  fav1 : int list;
  edge : int list;
  backbone : int;
  mutable fav2 : int list;
}

let bipartite alloc layer_a layer_b =
  List.iter (fun a -> List.iter (fun b -> connect alloc a b) layer_b) layer_a

let expansion ?(fsws = 4) ?(ssws = 4) ?(fav1 = 4) ?(edge = 2) () =
  let alloc = fresh (Graph.create ()) in
  let fsw_ids =
    List.init fsws (fun i ->
        new_node alloc ~name:(Printf.sprintf "fsw-%d" i) ~layer:Node.Fsw ())
  in
  let ssw_ids =
    List.init ssws (fun i ->
        new_node alloc ~name:(Printf.sprintf "ssw-%d" i) ~layer:Node.Ssw ())
  in
  let fav1_ids =
    List.init fav1 (fun i ->
        new_node alloc ~name:(Printf.sprintf "fav1-%d" i) ~layer:Node.Fa ())
  in
  let edge_ids =
    List.init edge (fun i ->
        new_node alloc ~name:(Printf.sprintf "edge-%d" i) ~layer:Node.Edge ())
  in
  let backbone = new_node alloc ~name:"backbone" ~layer:Node.Eb () in
  bipartite alloc fsw_ids ssw_ids;
  bipartite alloc ssw_ids fav1_ids;
  bipartite alloc fav1_ids edge_ids;
  List.iter (fun e -> connect alloc e backbone) edge_ids;
  {
    xgraph = alloc.graph;
    xfsws = fsw_ids;
    xssws = ssw_ids;
    fav1 = fav1_ids;
    edge = edge_ids;
    backbone;
    fav2 = [];
  }

let add_fav2 x =
  (* Continue the dense id sequence of the existing graph. *)
  let next_id = 1 + List.fold_left max (-1) (List.map (fun n -> n.Node.id) (Graph.nodes x.xgraph)) in
  let n = List.length x.fav2 in
  let node =
    Node.make ~id:next_id ~name:(Printf.sprintf "fav2-%d" n) ~layer:Node.Fa ()
  in
  Graph.add_node x.xgraph node;
  List.iter (fun ssw -> Graph.add_link x.xgraph next_id ssw) x.xssws;
  Graph.add_link x.xgraph next_id x.backbone;
  x.fav2 <- x.fav2 @ [ next_id ];
  next_id

(* ------------------------------------------------------------------ *)

type decommission = {
  dgraph : Graph.t;
  planes : int list list;
  grids : int list list;
  north_origin : int;
  south_origin : int;
}

let decommission ?(planes = 4) ?(grids = 4) ?(per = 4) () =
  let alloc = fresh (Graph.create ()) in
  let plane_ssws =
    List.init planes (fun p ->
        List.init per (fun n ->
            new_node alloc
              ~name:(Printf.sprintf "ssw-%d-%d" p n)
              ~layer:Node.Ssw ~plane:p ()))
  in
  let grid_fadus =
    List.init grids (fun g ->
        List.init per (fun n ->
            new_node alloc
              ~name:(Printf.sprintf "fadu-%d-%d" g n)
              ~layer:Node.Fadu ~grid:g ()))
  in
  (* SSW-n in every plane connects only to FADU-n in every grid. *)
  List.iter
    (fun ssws ->
      List.iteri
        (fun n ssw ->
          List.iter (fun fadus -> connect alloc ssw (List.nth fadus n)) grid_fadus)
        ssws)
    plane_ssws;
  let north_origin = new_node alloc ~name:"backbone" ~layer:Node.Eb () in
  List.iter
    (fun fadus -> List.iter (fun fadu -> connect alloc north_origin fadu) fadus)
    grid_fadus;
  let south_origin = new_node alloc ~name:"racks" ~layer:Node.Rsw () in
  List.iter
    (fun ssws -> List.iter (fun ssw -> connect alloc south_origin ssw) ssws)
    plane_ssws;
  { dgraph = alloc.graph; planes = plane_ssws; grids = grid_fadus;
    north_origin; south_origin }

let nth_of_groups groups n = List.map (fun group -> List.nth group n) groups

let ssws_numbered d n = nth_of_groups d.planes n
let fadus_numbered d n = nth_of_groups d.grids n

(* ------------------------------------------------------------------ *)

type wcmp_convergence = {
  wgraph : Graph.t;
  ebs : int list;
  uus : int list;
  dus : int list;
}

let wcmp_convergence ?(ebs = 8) ?(uus = 4) ?(dus = 1) () =
  let alloc = fresh (Graph.create ()) in
  let eb_ids =
    List.init ebs (fun i ->
        new_node alloc ~name:(Printf.sprintf "eb-%d" (i + 1)) ~layer:Node.Eb ())
  in
  let uu_ids =
    List.init uus (fun i ->
        let uu =
          new_node alloc ~name:(Printf.sprintf "uu-%d" (i + 1)) ~layer:Node.Fauu ()
        in
        List.iter (fun eb -> connect alloc uu eb) eb_ids;
        uu)
  in
  let du_ids =
    List.init dus (fun i ->
        let du =
          new_node alloc ~name:(Printf.sprintf "du-%d" (i + 1)) ~layer:Node.Fadu ()
        in
        (* Two BGP sessions per UU-DU pair (Figure 5). *)
        List.iter (fun uu -> connect ~sessions:2 alloc du uu) uu_ids;
        du)
  in
  { wgraph = alloc.graph; ebs = eb_ids; uus = uu_ids; dus = du_ids }

(* ------------------------------------------------------------------ *)

type mixed = {
  mgraph : Graph.t;
  origin : int;
  r : int array;
}

let mixed_dissemination () =
  let alloc = fresh (Graph.create ()) in
  let origin = new_node alloc ~name:"origin" ~layer:(Node.Other "UP") () in
  let r = Array.make 7 (-1) in
  for i = 1 to 6 do
    r.(i) <-
      new_node alloc ~name:(Printf.sprintf "r%d" i) ~layer:(Node.Other "R") ()
  done;
  connect alloc origin r.(1);
  connect alloc r.(1) r.(2);
  connect alloc r.(2) r.(6);
  connect alloc r.(1) r.(3);
  connect alloc r.(3) r.(4);
  connect alloc r.(4) r.(5);
  connect alloc r.(5) r.(6);
  { mgraph = alloc.graph; origin; r }

(* ------------------------------------------------------------------ *)

type rollout = {
  rgraph : Graph.t;
  rbackbone : int;
  rfas : int list;
  rdmag : int;
  rssws : int list;
  rfsws : int list;
}

let rollout ?(ssws = 4) ?(fsws = 4) () =
  let alloc = fresh (Graph.create ()) in
  let backbone = new_node alloc ~name:"backbone" ~layer:Node.Eb () in
  let dmag = new_node alloc ~name:"dmag" ~layer:Node.Dmag () in
  connect alloc dmag backbone;
  let fa_ids =
    List.init 2 (fun i ->
        let fa =
          new_node alloc ~name:(Printf.sprintf "fa%d" (i + 1)) ~layer:Node.Fa ()
        in
        connect alloc fa backbone;
        connect alloc fa dmag;
        fa)
  in
  let ssw_ids =
    List.init ssws (fun i ->
        let ssw =
          new_node alloc ~name:(Printf.sprintf "ssw-%d" i) ~layer:Node.Ssw ()
        in
        List.iter (fun fa -> connect alloc ssw fa) fa_ids;
        ssw)
  in
  let fsw_ids =
    List.init fsws (fun i ->
        let fsw =
          new_node alloc ~name:(Printf.sprintf "fsw-%d" i) ~layer:Node.Fsw ()
        in
        List.iter (fun ssw -> connect alloc fsw ssw) ssw_ids;
        fsw)
  in
  { rgraph = alloc.graph; rbackbone = backbone; rfas = fa_ids; rdmag = dmag;
    rssws = ssw_ids; rfsws = fsw_ids }

(* ------------------------------------------------------------------ *)

type sev = {
  sgraph : Graph.t;
  sbackbone : int;
  sfas : int list;
  bad_fa : int;
  sssws : int list;
  sfsws : int list;
}

let sev ?(fas = 4) ?(ssws = 4) ?(fsws = 4) () =
  let alloc = fresh (Graph.create ()) in
  let backbone = new_node alloc ~name:"backbone" ~layer:Node.Eb () in
  let fa_ids =
    List.init fas (fun i ->
        new_node alloc ~name:(Printf.sprintf "fa%d" (i + 1)) ~layer:Node.Fa ())
  in
  let bad_fa = List.nth fa_ids (fas - 1) in
  (* The bad FA is missing its cabling toward the backbone. *)
  List.iter
    (fun fa -> if fa <> bad_fa then connect alloc fa backbone)
    fa_ids;
  let ssw_ids =
    List.init ssws (fun i ->
        let ssw =
          new_node alloc ~name:(Printf.sprintf "ssw-%d" i) ~layer:Node.Ssw ()
        in
        List.iter (fun fa -> connect alloc ssw fa) fa_ids;
        ssw)
  in
  let fsw_ids =
    List.init fsws (fun i ->
        let fsw =
          new_node alloc ~name:(Printf.sprintf "fsw-%d" i) ~layer:Node.Fsw ()
        in
        List.iter (fun ssw -> connect alloc fsw ssw) ssw_ids;
        fsw)
  in
  { sgraph = alloc.graph; sbackbone = backbone; sfas = fa_ids; bad_fa;
    sssws = ssw_ids; sfsws = fsw_ids }
