(** Switches and their place in the data-center hierarchy.

    Layers follow Figure 1 of the paper (bottom to top): RSW, FSW, SSW,
    FADU, FAUU; FAUUs connect to backbone devices (EB). [Fa] stands for a
    combined Fabric Aggregate node used by the older topologies of
    Figures 2 and 10; [Dmag] is the backup aggregation layer of Figure 10;
    [Edge] the legacy layer being replaced in Figure 2. [Other] supports
    ad-hoc experiment topologies (e.g. R1–R6 of Figure 9). *)

type layer =
  | Rsw
  | Fsw
  | Ssw
  | Fadu
  | Fauu
  | Fa
  | Edge
  | Dmag
  | Eb
  | Other of string

val layer_to_string : layer -> string

val layer_rank : layer -> int
(** Bottom-to-top position used by deployment sequencing (Section 5.3.2):
    RSW = 0 … EB = 8. [Other] layers rank above everything. *)

val layer_equal : layer -> layer -> bool

type t = {
  id : Net.Route.device;  (** unique within a topology *)
  name : string;
  layer : layer;
  asn : Net.Asn.t;        (** every switch runs eBGP in its own AS *)
  pod : int;              (** logical grouping; [-1] when not applicable *)
  plane : int;
  grid : int;
}

val make :
  id:int -> name:string -> layer:layer -> ?pod:int -> ?plane:int -> ?grid:int ->
  unit -> t
(** The node's ASN is derived as [64512 + id] (private 16-bit range grows
    into 4-byte space for large fleets). *)

val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
