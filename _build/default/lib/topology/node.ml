type layer =
  | Rsw
  | Fsw
  | Ssw
  | Fadu
  | Fauu
  | Fa
  | Edge
  | Dmag
  | Eb
  | Other of string

let layer_to_string = function
  | Rsw -> "RSW"
  | Fsw -> "FSW"
  | Ssw -> "SSW"
  | Fadu -> "FADU"
  | Fauu -> "FAUU"
  | Fa -> "FA"
  | Edge -> "EDGE"
  | Dmag -> "DMAG"
  | Eb -> "EB"
  | Other s -> s

let layer_rank = function
  | Rsw -> 0
  | Fsw -> 1
  | Ssw -> 2
  | Fadu -> 3
  | Fauu -> 4
  | Fa -> 5
  | Edge -> 6
  | Dmag -> 7
  | Eb -> 8
  | Other _ -> 9

let layer_equal a b =
  match (a, b) with
  | Other x, Other y -> String.equal x y
  | (Rsw | Fsw | Ssw | Fadu | Fauu | Fa | Edge | Dmag | Eb | Other _), _ ->
    a = b

type t = {
  id : Net.Route.device;
  name : string;
  layer : layer;
  asn : Net.Asn.t;
  pod : int;
  plane : int;
  grid : int;
}

let make ~id ~name ~layer ?(pod = -1) ?(plane = -1) ?(grid = -1) () =
  { id; name; layer; asn = Net.Asn.of_int (64512 + id); pod; plane; grid }

let pp ppf t =
  Format.fprintf ppf "%s(#%d,%s)" t.name t.id (layer_to_string t.layer)

let compare a b = Int.compare a.id b.id
let equal a b = Int.equal a.id b.id
