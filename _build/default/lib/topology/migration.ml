type category =
  | Routing_system_evolution
  | Incremental_capacity_scaling
  | Differential_traffic_distribution
  | Routing_policy_transitions
  | Traffic_drain_for_maintenance

let all_categories =
  [
    Routing_system_evolution;
    Incremental_capacity_scaling;
    Differential_traffic_distribution;
    Routing_policy_transitions;
    Traffic_drain_for_maintenance;
  ]

let category_label = function
  | Routing_system_evolution -> "Routing System Evolution"
  | Incremental_capacity_scaling -> "Incremental Capacity Scaling"
  | Differential_traffic_distribution -> "Differential Traffic Distribution"
  | Routing_policy_transitions -> "Routing Policy Transitions"
  | Traffic_drain_for_maintenance -> "Traffic Drain For Maintenance"

let category_letter = function
  | Routing_system_evolution -> "a"
  | Incremental_capacity_scaling -> "b"
  | Differential_traffic_distribution -> "c"
  | Routing_policy_transitions -> "d"
  | Traffic_drain_for_maintenance -> "e"

type frequency = Per_year of int | Daily

type scope = Multi_dc | Sub_dc

type row = {
  category : category;
  frequency : frequency;
  scope : scope;
  typical_duration_days : float;
}

let table1 =
  [
    { category = Routing_system_evolution; frequency = Per_year 10;
      scope = Multi_dc; typical_duration_days = 45.0 };
    { category = Incremental_capacity_scaling; frequency = Per_year 10;
      scope = Multi_dc; typical_duration_days = 180.0 };
    { category = Differential_traffic_distribution; frequency = Per_year 10;
      scope = Sub_dc; typical_duration_days = 60.0 };
    { category = Routing_policy_transitions; frequency = Per_year 10;
      scope = Multi_dc; typical_duration_days = 90.0 };
    { category = Traffic_drain_for_maintenance; frequency = Daily;
      scope = Multi_dc; typical_duration_days = 1.0 /. 24.0 };
  ]

let pp_frequency ppf = function
  | Per_year n -> Format.fprintf ppf "%d+/year" n
  | Daily -> Format.pp_print_string ppf "Daily"

let pp_scope ppf = function
  | Multi_dc -> Format.pp_print_string ppf "Multi-DC"
  | Sub_dc -> Format.pp_print_string ppf "Sub-DC"

type fleet_spec = {
  dcs : int;
  pods_per_dc : int;
  rsws_per_pod : int;
  fsws_per_pod : int;
  ssws_per_plane : int;
  grids_per_dc : int;
  fauus_per_grid : int;
}

let default_fleet =
  {
    dcs = 6;
    pods_per_dc = 64;
    rsws_per_pod = 48;
    fsws_per_pod = 4;
    ssws_per_plane = 36;
    grids_per_dc = 4;
    fauus_per_grid = 9;
  }

let per_dc_counts spec =
  let rsw = spec.pods_per_dc * spec.rsws_per_pod in
  let fsw = spec.pods_per_dc * spec.fsws_per_pod in
  let ssw = spec.fsws_per_pod * spec.ssws_per_plane in
  (* SSW n of every plane connects to FADU n of every grid, so a grid hosts
     [ssws_per_plane] FADUs. *)
  let fadu = spec.grids_per_dc * spec.ssws_per_plane in
  let fauu = spec.grids_per_dc * spec.fauus_per_grid in
  [ (Node.Rsw, rsw); (Node.Fsw, fsw); (Node.Ssw, ssw);
    (Node.Fadu, fadu); (Node.Fauu, fauu) ]

let layer_counts spec =
  List.map (fun (layer, n) -> (layer, n * spec.dcs)) (per_dc_counts spec)

let scale factor counts =
  List.map (fun (layer, n) -> (layer, int_of_float (float_of_int n *. factor)))
    counts

let zero_layer layer counts =
  List.map
    (fun (l, n) -> if Node.layer_equal l layer then (l, 0) else (l, n))
    counts

let switches_involved ~rng spec category =
  let dc = per_dc_counts spec in
  match category with
  | Routing_system_evolution ->
    (* Fleet-wide policy/binary update. *)
    layer_counts spec
  | Incremental_capacity_scaling ->
    (* Topology overhaul of a subset of DCs (at least two, "Multi-DC"). *)
    let affected = 2 + Dsim.Rng.int rng (max 1 (spec.dcs - 1)) in
    let affected = min affected spec.dcs in
    List.map (fun (l, n) -> (l, n * affected)) dc
  | Differential_traffic_distribution ->
    (* A service footprint: a fraction of one DC's pods plus the spine
       planes they ride on; FA layers untouched. *)
    let pods = 1 + Dsim.Rng.int rng spec.pods_per_dc in
    let frac = float_of_int pods /. float_of_int spec.pods_per_dc in
    dc
    |> List.map (fun (l, n) ->
           match l with
           | Node.Rsw | Node.Fsw ->
             (l, int_of_float (float_of_int n *. frac))
           | Node.Ssw -> (l, n)
           | Node.Fadu | Node.Fauu -> (l, 0)
           | Node.Fa | Node.Edge | Node.Dmag | Node.Eb | Node.Other _ -> (l, n))
  | Routing_policy_transitions ->
    (* Multi-DC, fabric switches and above; racks keep their policy. *)
    let affected = 2 + Dsim.Rng.int rng (max 1 (spec.dcs - 1)) in
    let affected = min affected spec.dcs in
    List.map (fun (l, n) -> (l, n * affected)) dc |> zero_layer Node.Rsw
  | Traffic_drain_for_maintenance ->
    (* One spine plane of one DC plus the FADUs it connects to: every SSW
       of the plane reaches one FADU per grid. *)
    scale 0.0 dc
    |> List.map (fun (l, n) ->
           match l with
           | Node.Ssw -> (l, spec.ssws_per_plane)
           | Node.Fadu -> (l, spec.grids_per_dc * spec.ssws_per_plane)
           | Node.Rsw | Node.Fsw | Node.Fauu | Node.Fa | Node.Edge
           | Node.Dmag | Node.Eb | Node.Other _ -> (l, n))

let average_switches_per_layer ?(samples = 100) ~rng spec category =
  let totals = Hashtbl.create 8 in
  let order = ref [] in
  for _ = 1 to samples do
    List.iter
      (fun (layer, n) ->
        if not (Hashtbl.mem totals layer) then begin
          Hashtbl.replace totals layer 0.0;
          order := layer :: !order
        end;
        Hashtbl.replace totals layer (Hashtbl.find totals layer +. float_of_int n))
      (switches_involved ~rng spec category)
  done;
  List.rev_map
    (fun layer -> (layer, Hashtbl.find totals layer /. float_of_int samples))
    !order
