type t = int

let max_asn = (1 lsl 32) - 1

let of_int x =
  if x < 0 || x > max_asn then
    invalid_arg (Printf.sprintf "Asn.of_int: %d out of range" x);
  x

let to_int t = t
let to_string = string_of_int
let pp ppf t = Format.pp_print_int ppf t
let compare = Int.compare
let equal = Int.equal

module Set = Set.Make (Int)
module Map = Map.Make (Int)
