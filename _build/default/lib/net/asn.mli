(** Autonomous System Numbers.

    In Meta-style data centers every switch runs eBGP in its own private AS,
    so ASNs double as switch identities inside AS-paths. *)

type t = private int
(** A 4-byte ASN. *)

val of_int : int -> t
(** Raises [Invalid_argument] if outside [0, 2^32 - 1]. *)

val to_int : t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val equal : t -> t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
