type segment =
  | Seq of Asn.t list
  | Set of Asn.t list

type t = segment list

let empty = []

let of_asns = function [] -> [] | asns -> [ Seq asns ]

let of_segments segs =
  List.filter (function Seq [] | Set [] -> false | Seq _ | Set _ -> true) segs

let segments t = t

let prepend asn = function
  | Seq asns :: rest -> Seq (asn :: asns) :: rest
  | (([] | Set _ :: _) as t) -> Seq [ asn ] :: t

let rec prepend_n n asn t =
  if n <= 0 then t else prepend_n (n - 1) asn (prepend asn t)

let length t =
  List.fold_left
    (fun acc -> function Seq asns -> acc + List.length asns | Set _ -> acc + 1)
    0 t

let mem asn t =
  List.exists
    (function Seq asns | Set asns -> List.exists (Asn.equal asn) asns)
    t

let asns t =
  List.concat_map (function Seq asns | Set asns -> asns) t

let origin_asn t =
  match List.rev (asns t) with [] -> None | last :: _ -> Some last

let first_asn t = match asns t with [] -> None | first :: _ -> Some first

let to_string t =
  let seg_to_string = function
    | Seq asns -> String.concat " " (List.map Asn.to_string asns)
    | Set asns ->
      "{" ^ String.concat " " (List.map Asn.to_string asns) ^ "}"
  in
  String.concat " " (List.map seg_to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let compare_segment a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y ->
    List.compare Asn.compare x y
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare = List.compare compare_segment
let equal a b = compare a b = 0
