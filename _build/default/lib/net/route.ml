type device = int

type t = {
  prefix : Prefix.t;
  attr : Attr.t;
  learned_from : device;
}

let make ~prefix ~attr ~learned_from = { prefix; attr; learned_from }

let next_hop t = t.learned_from

let compare a b =
  let c = Prefix.compare a.prefix b.prefix in
  if c <> 0 then c
  else
    let c = Int.compare a.learned_from b.learned_from in
    if c <> 0 then c else Attr.compare a.attr b.attr

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "@[<h>%a via %d %a@]" Prefix.pp t.prefix t.learned_from
    Attr.pp t.attr
