lib/net/community.mli: Format Set
