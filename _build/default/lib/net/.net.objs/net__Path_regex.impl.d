lib/net/path_regex.ml: Array As_path Asn Format Int List Printf Set String
