lib/net/as_path.ml: Asn Format List String
