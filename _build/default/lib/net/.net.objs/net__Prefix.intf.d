lib/net/prefix.mli: Format Map Set
