lib/net/as_path.mli: Asn Format
