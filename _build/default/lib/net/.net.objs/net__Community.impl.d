lib/net/community.ml: Format Int Printf Set String
