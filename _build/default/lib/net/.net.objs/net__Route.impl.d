lib/net/route.ml: Attr Format Int Prefix
