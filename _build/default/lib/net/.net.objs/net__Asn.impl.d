lib/net/asn.ml: Format Int Map Printf Set
