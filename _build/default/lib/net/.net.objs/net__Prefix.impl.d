lib/net/prefix.ml: Buffer Format Hashtbl Int Int64 List Map Printf Set String
