lib/net/route.mli: Attr Format Prefix
