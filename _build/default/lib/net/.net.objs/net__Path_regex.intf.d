lib/net/path_regex.mli: As_path Asn Format
