lib/net/attr.mli: As_path Asn Community Format
