lib/net/attr.ml: As_path Community Format Int Option
