type family = V4 | V6

(* Address bits live in [hi]/[lo] as a 128-bit big-endian quantity. IPv4
   addresses occupy the low 32 bits of [lo] with [hi = 0]. The family tag
   keeps 0.0.0.0/0 and ::/0 distinct. *)
type t = { fam : family; hi : int64; lo : int64; len : int }

let bits_of_family = function V4 -> 32 | V6 -> 128

(* Clear host bits so structurally equal prefixes compare equal. *)
let canonicalize fam hi lo len =
  let total = bits_of_family fam in
  if len < 0 || len > total then
    invalid_arg (Printf.sprintf "Prefix: mask length %d out of range" len);
  let keep_hi, keep_lo =
    match fam with
    | V4 -> (0, len)
    | V6 -> if len >= 64 then (64, len - 64) else (len, 0)
  in
  let mask keep =
    if keep <= 0 then 0L
    else if keep >= 64 then -1L
    else Int64.shift_left (-1L) (64 - keep)
  in
  let hi = Int64.logand hi (mask keep_hi) in
  let lo =
    match fam with
    | V4 ->
      (* keep_lo counts from bit 31 downward within the low 32 bits *)
      let m =
        if keep_lo <= 0 then 0L
        else if keep_lo >= 32 then 0xFFFF_FFFFL
        else
          Int64.logand 0xFFFF_FFFFL (Int64.shift_left (-1L) (32 - keep_lo))
      in
      Int64.logand lo m
    | V6 -> Int64.logand lo (mask keep_lo)
  in
  { fam; hi; lo; len }

let v4 a b c d len =
  let octet name x =
    if x < 0 || x > 255 then
      invalid_arg (Printf.sprintf "Prefix.v4: octet %s = %d" name x)
  in
  octet "a" a; octet "b" b; octet "c" c; octet "d" d;
  let lo =
    Int64.of_int (((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d) land 0xFFFFFFFF)
  in
  canonicalize V4 0L lo len

let v6 ~hi ~lo len = canonicalize V6 hi lo len

let default_v4 = v4 0 0 0 0 0
let default_v6 = v6 ~hi:0L ~lo:0L 0

let family t = t.fam
let mask_length t = t.len
let is_default t = t.len = 0

let to_string t =
  match t.fam with
  | V4 ->
    let x = Int64.to_int t.lo in
    Printf.sprintf "%d.%d.%d.%d/%d"
      ((x lsr 24) land 0xFF) ((x lsr 16) land 0xFF)
      ((x lsr 8) land 0xFF) (x land 0xFF) t.len
  | V6 ->
    let group i =
      let word = if i < 4 then t.hi else t.lo in
      let shift = 48 - (i mod 4 * 16) in
      Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) 0xFFFFL)
    in
    let groups = List.init 8 group in
    (* Compress the longest run of zero groups as "::" (leftmost wins). *)
    let best_start, best_len =
      let rec scan i cur_start cur_len best_start best_len =
        if i = 8 then
          if cur_len > best_len then (cur_start, cur_len)
          else (best_start, best_len)
        else if List.nth groups i = 0 then
          let cur_start = if cur_len = 0 then i else cur_start in
          scan (i + 1) cur_start (cur_len + 1) best_start best_len
        else if cur_len > best_len then scan (i + 1) 0 0 cur_start cur_len
        else scan (i + 1) 0 0 best_start best_len
      in
      scan 0 0 0 0 0
    in
    let buf = Buffer.create 24 in
    if best_len >= 2 then begin
      List.iteri
        (fun i g ->
          if i < best_start then begin
            if i > 0 then Buffer.add_char buf ':';
            Buffer.add_string buf (Printf.sprintf "%x" g)
          end
          else if i = best_start then Buffer.add_string buf "::"
          else if i >= best_start + best_len then begin
            if i > best_start + best_len then Buffer.add_char buf ':';
            Buffer.add_string buf (Printf.sprintf "%x" g)
          end)
        groups;
      (* "::" at the very end already emitted by the i = best_start branch *)
      Buffer.add_string buf (Printf.sprintf "/%d" t.len)
    end
    else begin
      List.iteri
        (fun i g ->
          if i > 0 then Buffer.add_char buf ':';
          Buffer.add_string buf (Printf.sprintf "%x" g))
        groups;
      Buffer.add_string buf (Printf.sprintf "/%d" t.len)
    end;
    Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let parse_v4 s len_str =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    (try
       let a = int_of_string a and b = int_of_string b
       and c = int_of_string c and d = int_of_string d
       and len = int_of_string len_str in
       if List.exists (fun x -> x < 0 || x > 255) [ a; b; c; d ] then
         Error "octet out of range"
       else if len < 0 || len > 32 then Error "mask length out of range"
       else Ok (v4 a b c d len)
     with _ -> Error "not an IPv4 prefix")
  | _ -> Error "not an IPv4 prefix"

let parse_v6 s len_str =
  try
    let len = int_of_string len_str in
    if len < 0 || len > 128 then Error "mask length out of range"
    else begin
      let halves =
        match String.index_opt s ':' with
        | None -> Error "not an IPv6 address"
        | Some _ ->
          (* Split on "::" if present. *)
          let double =
            let rec find i =
              if i + 1 >= String.length s then None
              else if s.[i] = ':' && s.[i + 1] = ':' then Some i
              else find (i + 1)
            in
            find 0
          in
          (match double with
           | None -> Ok (s, None)
           | Some i ->
             let left = String.sub s 0 i in
             let right = String.sub s (i + 2) (String.length s - i - 2) in
             Ok (left, Some right))
      in
      match halves with
      | Error e -> Error e
      | Ok (left, right) ->
        let groups_of str =
          if str = "" then []
          else
            String.split_on_char ':' str
            |> List.map (fun g -> int_of_string ("0x" ^ g))
        in
        let lgs = groups_of left in
        let groups =
          match right with
          | None ->
            if List.length lgs <> 8 then failwith "need 8 groups" else lgs
          | Some r ->
            let rgs = groups_of r in
            let fill = 8 - List.length lgs - List.length rgs in
            if fill < 1 then failwith "bad ::"
            else lgs @ List.init fill (fun _ -> 0) @ rgs
        in
        if List.exists (fun g -> g < 0 || g > 0xFFFF) groups then
          Error "group out of range"
        else begin
          let word gs =
            List.fold_left
              (fun acc g -> Int64.logor (Int64.shift_left acc 16) (Int64.of_int g))
              0L gs
          in
          let rec take n = function
            | [] -> []
            | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
          in
          let rec drop n l =
            if n = 0 then l
            else match l with [] -> [] | _ :: rest -> drop (n - 1) rest
          in
          let hi = word (take 4 groups) and lo = word (drop 4 groups) in
          Ok (v6 ~hi ~lo len)
        end
    end
  with _ -> Error "not an IPv6 prefix"

let of_string s =
  match String.index_opt s '/' with
  | None -> Error "missing /len"
  | Some i ->
    let addr = String.sub s 0 i in
    let len_str = String.sub s (i + 1) (String.length s - i - 1) in
    if String.contains addr ':' then parse_v6 addr len_str
    else parse_v4 addr len_str

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "Prefix.of_string_exn %S: %s" s e)

let compare a b =
  match (a.fam, b.fam) with
  | V4, V6 -> -1
  | V6, V4 -> 1
  | (V4 | V6), _ ->
    let c = Int64.unsigned_compare a.hi b.hi in
    if c <> 0 then c
    else
      let c = Int64.unsigned_compare a.lo b.lo in
      if c <> 0 then c else Int.compare a.len b.len

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.fam, t.hi, t.lo, t.len)

let contains outer inner =
  outer.fam = inner.fam
  && outer.len <= inner.len
  &&
  let clipped = canonicalize inner.fam inner.hi inner.lo outer.len in
  Int64.equal clipped.hi outer.hi && Int64.equal clipped.lo outer.lo

let mem_address p host = contains p host

let subdivide p =
  let total = bits_of_family p.fam in
  if p.len >= total then invalid_arg "Prefix.subdivide: host prefix";
  let len = p.len + 1 in
  let left = canonicalize p.fam p.hi p.lo len in
  let right =
    match p.fam with
    | V4 ->
      let bit = Int64.shift_left 1L (32 - len) in
      canonicalize V4 p.hi (Int64.logor p.lo bit) len
    | V6 ->
      if len <= 64 then
        let bit = Int64.shift_left 1L (64 - len) in
        canonicalize V6 (Int64.logor p.hi bit) p.lo len
      else
        let bit = Int64.shift_left 1L (128 - len) in
        canonicalize V6 p.hi (Int64.logor p.lo bit) len
  in
  (left, right)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
