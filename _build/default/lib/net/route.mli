(** Routes: a destination prefix with attributes and the peer it came from.

    In a Clos data center the BGP next hop of a route learned over a session
    is the directly connected peer, so we identify next hops with abstract
    peer/device identifiers (integers assigned by the topology layer). *)

type device = int
(** Abstract device identifier; assigned by [Topology]. *)

type t = {
  prefix : Prefix.t;
  attr : Attr.t;
  learned_from : device;
      (** The peer the route was received from; doubles as the forwarding
          next hop. Locally originated routes use the device's own id. *)
}

val make : prefix:Prefix.t -> attr:Attr.t -> learned_from:device -> t

val next_hop : t -> device

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
