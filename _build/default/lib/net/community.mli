(** BGP communities.

    Standard communities are the usual [asn:value] 32-bit tags; the paper
    attaches one to every prefix at its point of origin (e.g.
    ["BACKBONE_DEFAULT_ROUTE"]). The link-bandwidth extended community
    (draft-ietf-idr-link-bandwidth) carries WCMP weights between layers and
    is modeled separately in {!Attr}. *)

type t
(** A standard community. *)

val make : int -> int -> t
(** [make high low]: both halves must fit in 16 bits. *)

val of_string : string -> (t, string) result
(** Parses ["high:low"]. *)

val of_string_exn : string -> t

val high : t -> int
val low : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
end

(** Well-known communities used across the paper's case studies. *)
module Well_known : sig
  val backbone_default_route : t
  (** Attached at origination to default routes advertised down from the
      backbone (Section 4.4). *)

  val anycast_load_bearing : t
  (** Marks anycast load-bearing prefixes that get special routing-stability
      treatment (Section 3.1, Differential Traffic Distribution). *)

  val rack_origin : t
  (** Attached to production prefixes at their rack of origin. *)

  val infrastructure : t
  (** Marks infrastructure prefixes (Open/R-routed in production). *)

  val drained : t
  (** Attached by export policy on switches transitioning from LIVE to
      MAINTENANCE (Section 3.4). *)
end
