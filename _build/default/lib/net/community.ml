type t = int (* high 16 bits: administrator; low 16 bits: value *)

let make high low =
  if high < 0 || high > 0xFFFF then
    invalid_arg (Printf.sprintf "Community.make: high %d out of range" high);
  if low < 0 || low > 0xFFFF then
    invalid_arg (Printf.sprintf "Community.make: low %d out of range" low);
  (high lsl 16) lor low

let high t = (t lsr 16) land 0xFFFF
let low t = t land 0xFFFF

let of_string s =
  match String.split_on_char ':' s with
  | [ h; l ] ->
    (try
       let h = int_of_string h and l = int_of_string l in
       if h < 0 || h > 0xFFFF || l < 0 || l > 0xFFFF then
         Error "community half out of range"
       else Ok (make h l)
     with _ -> Error "not a community")
  | _ -> Error "not a community"

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "Community.of_string_exn %S: %s" s e)

let to_string t = Printf.sprintf "%d:%d" (high t) (low t)
let pp ppf t = Format.pp_print_string ppf (to_string t)
let compare = Int.compare
let equal = Int.equal

module Set = struct
  include Set.Make (Int)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf c -> pp ppf c))
      (elements s)
end

module Well_known = struct
  (* Administrator 65100 is reserved in this codebase for intent tags. *)
  let backbone_default_route = make 65100 1
  let anycast_load_bearing = make 65100 2
  let rack_origin = make 65100 3
  let infrastructure = make 65100 4
  let drained = make 65100 5
end
