(** IP prefixes (IPv4 and IPv6).

    A prefix is an address together with a mask length. Prefixes are kept in
    canonical form: all host bits (bits beyond the mask) are zero. The
    representation is address-family aware so IPv4 [0.0.0.0/0] and IPv6 [::/0]
    are distinct values, as required by the paper's dual default routes. *)

type family = V4 | V6

type t
(** A canonical IP prefix. *)

val v4 : int -> int -> int -> int -> int -> t
(** [v4 a b c d len] is the IPv4 prefix [a.b.c.d/len]. Host bits are cleared.
    Raises [Invalid_argument] if any octet or [len] is out of range. *)

val v6 : hi:int64 -> lo:int64 -> int -> t
(** [v6 ~hi ~lo len] is the IPv6 prefix whose 128-bit address is [hi:lo].
    Host bits are cleared. Raises [Invalid_argument] if [len] is not within
    [0, 128]. *)

val of_string : string -> (t, string) result
(** Parses ["a.b.c.d/len"] or an RFC-4291 IPv6 literal with ["/len"]
    (full and [::]-compressed forms are accepted). *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on parse errors. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val family : t -> family

val mask_length : t -> int

val default_v4 : t
(** [0.0.0.0/0] *)

val default_v6 : t
(** [::/0] *)

val is_default : t -> bool

val contains : t -> t -> bool
(** [contains outer inner] is [true] iff every address of [inner] is in
    [outer]. Always [false] across families. *)

val mem_address : t -> t -> bool
(** [mem_address p host] where [host] is a /32 or /128: address membership. *)

val subdivide : t -> t * t
(** [subdivide p] splits [p] into its two half-length children. Raises
    [Invalid_argument] on a host prefix. *)

val compare : t -> t -> int
(** Total order: family, then address, then mask length. *)

val equal : t -> t -> bool

val hash : t -> int

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
