(** Deterministic pseudo-random number generation (splitmix64).

    Every experiment in this repository draws randomness from a seeded
    generator so runs are reproducible bit-for-bit; the ambient [Random]
    module is never used inside the simulation. *)

type t

val create : int -> t
(** [create seed]. *)

val split : t -> t
(** An independent stream derived from [t]; advances [t]. *)

val int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean; used for message
    latencies so convergence interleavings resemble production jitter. *)

val log_normal : t -> mu:float -> sigma:float -> float
(** Log-normal sample; used for RPC latency tails (Figure 12). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs]: [k] distinct elements of [xs]
    (all of [xs] if [k >= length xs]); order is unspecified. *)
