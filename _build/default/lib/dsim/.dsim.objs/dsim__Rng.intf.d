lib/dsim/rng.mli:
