lib/dsim/event_queue.ml: Array Float Option
