(** BGP update messages exchanged between speakers. *)

type t =
  | Update of { prefix : Net.Prefix.t; attr : Net.Attr.t }
  | Withdraw of { prefix : Net.Prefix.t }

val prefix : t -> Net.Prefix.t
val pp : Format.formatter -> t -> unit
