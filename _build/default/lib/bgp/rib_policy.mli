(** The RIB-policy plug-in interface — the protocol side of the Route
    Planning Abstraction (Figure 6 of the paper).

    RPAs {e influence rather than take over} BGP's decision making: route
    exchange between peers is untouched, but four points of the control
    plane workflow are hookable:

    + ingress route filtering (after standard sanity checks and ingress
      policy, before admission to the RIB);
    + path selection (given the candidates {e and} the native selection, so
      an RPA can fall back to native behaviour);
    + UCMP/WCMP weight assignment on the selected multipath set;
    + egress route filtering (after egress policy, before advertisement).

    [lib/bgp] defines the interface and its native (identity) instance;
    [lib/core] (Centralium) provides the RPA-evaluating instance. This
    direction of dependency mirrors the production system: the BGP daemon
    ships the plug-in mechanism, the controller ships plans. *)

(** A forwarding decision produced by the selection hook. *)
type selection = {
  selected : Path.t list;
      (** the forwarding multipath set (installed to FIB unless empty) *)
  advertise : Path.t option;
      (** path advertised to peers; [None] withdraws. The paper's
          dissemination rule picks the least favorable selected path. *)
  keep_fib_warm : bool;
      (** when [advertise = None] because a minimum-next-hop constraint is
          violated, keep the previous FIB entries so in-flight packets are
          not dropped (the [KeepFibWarmIfMnhViolated] knob). *)
}

(** Per-evaluation context handed to every hook. *)
type ctx = {
  device : int;
  prefix : Net.Prefix.t;
  now : float;  (** virtual time, for RPA expiration *)
  peer_layer : int -> Topology.Node.layer option;
      (** layer of a peer device, [None] if unknown *)
  live_peers_in_layer : Topology.Node.layer -> int;
      (** how many of this device's peers in the given layer have at least
          one established session — the denominator for fractional
          minimum-next-hop thresholds *)
}

type hooks = {
  name : string;
  ingress_accept : ctx -> peer:int -> Net.Attr.t -> bool;
  select : ctx -> candidates:Path.t list ->
           native:(Path.t list * Path.t option) -> selection;
  weights : ctx -> selected:Path.t list -> (Path.t * int) list option;
      (** [None] = use native weighting (link-bandwidth WCMP or plain
          ECMP) *)
  egress_accept : ctx -> peer:int -> Net.Attr.t -> bool;
}

val native : hooks
(** Identity hooks: accept everything, keep the native selection, native
    weights. A speaker with [native] hooks is a plain BGP speaker. *)

val is_native : hooks -> bool
