type match_clause = {
  m_prefixes : Net.Prefix.t list;
  m_communities : Net.Community.t list;
  m_as_path : Net.Path_regex.t option;
}

let match_any = { m_prefixes = []; m_communities = []; m_as_path = None }

type action =
  | Accept
  | Reject
  | Set_local_pref of int
  | Set_med of int
  | Prepend_self of int
  | Add_community of Net.Community.t
  | Remove_community of Net.Community.t
  | Set_link_bandwidth of int option

type rule = { matches : match_clause; actions : action list }

type t = rule list

let empty = []

let accept_all = [ { matches = match_any; actions = [ Accept ] } ]

let reject_all = [ { matches = match_any; actions = [ Reject ] } ]

let drain =
  [
    {
      matches = match_any;
      actions =
        [ Prepend_self 3; Add_community Net.Community.Well_known.drained ];
    };
  ]

let rule ?(prefixes = []) ?(communities = []) ?as_path actions =
  {
    matches =
      {
        m_prefixes = prefixes;
        m_communities = communities;
        m_as_path = Option.map Net.Path_regex.compile_exn as_path;
      };
    actions;
  }

let matches clause prefix attr =
  let prefix_ok =
    clause.m_prefixes = []
    || List.exists (fun p -> Net.Prefix.contains p prefix) clause.m_prefixes
  in
  let community_ok =
    clause.m_communities = []
    || List.exists (fun c -> Net.Attr.has_community c attr) clause.m_communities
  in
  let path_ok =
    match clause.m_as_path with
    | None -> true
    | Some re -> Net.Path_regex.matches re attr.Net.Attr.as_path
  in
  prefix_ok && community_ok && path_ok

let apply_action self attr = function
  | Accept | Reject -> attr (* flow control handled by caller *)
  | Set_local_pref lp -> Net.Attr.set_local_pref lp attr
  | Set_med med -> { attr with Net.Attr.med }
  | Prepend_self n ->
    { attr with Net.Attr.as_path = Net.As_path.prepend_n n self attr.Net.Attr.as_path }
  | Add_community c -> Net.Attr.add_community c attr
  | Remove_community c ->
    { attr with
      Net.Attr.communities = Net.Community.Set.remove c attr.Net.Attr.communities }
  | Set_link_bandwidth bw -> Net.Attr.set_link_bandwidth bw attr

let apply t ~self prefix attr =
  match List.find_opt (fun r -> matches r.matches prefix attr) t with
  | None -> Some attr
  | Some rule ->
    if List.mem Reject rule.actions then None
    else Some (List.fold_left (apply_action self) attr rule.actions)

let pp_action ppf = function
  | Accept -> Format.pp_print_string ppf "accept"
  | Reject -> Format.pp_print_string ppf "reject"
  | Set_local_pref lp -> Format.fprintf ppf "local-pref %d" lp
  | Set_med med -> Format.fprintf ppf "med %d" med
  | Prepend_self n -> Format.fprintf ppf "prepend-self %d" n
  | Add_community c -> Format.fprintf ppf "add-community %a" Net.Community.pp c
  | Remove_community c ->
    Format.fprintf ppf "remove-community %a" Net.Community.pp c
  | Set_link_bandwidth (Some bw) -> Format.fprintf ppf "link-bandwidth %d" bw
  | Set_link_bandwidth None -> Format.pp_print_string ppf "link-bandwidth none"

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf r ->
         Format.fprintf ppf "rule -> %a"
           (Format.pp_print_list ~pp_sep:(fun ppf () ->
                Format.pp_print_string ppf "; ")
              pp_action)
           r.actions))
    t
