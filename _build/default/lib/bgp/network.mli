(** An event-driven network of BGP speakers over a topology.

    Every device of the graph gets a speaker; every graph link becomes one
    or more eBGP sessions. Messages are delivered through the discrete-event
    queue with randomized per-message latency but FIFO order within a
    session (BGP runs over TCP), which is exactly the asynchrony that
    produces the paper's transient states. All operations below merely
    {e schedule} work; call {!converge} (or {!run_until}) to let the
    network react. *)

type latency_model = Dsim.Rng.t -> float
(** Samples a one-way message latency in seconds. *)

val default_latency : latency_model
(** 100 µs base + exponential with 1 ms mean. *)

type t

val create :
  ?seed:int ->
  ?config:Speaker.config ->
  ?latency:latency_model ->
  Topology.Graph.t ->
  t
(** Builds a speaker per node and sessions per link (respecting the link's
    [sessions] count). [config] applies to every speaker. *)

val graph : t -> Topology.Graph.t
val queue : t -> Dsim.Event_queue.t
val trace : t -> Trace.t
val now : t -> float
val speaker : t -> int -> Speaker.t

(** {1 Scheduled operations} *)

val originate : ?delay:float -> t -> int -> Net.Prefix.t -> Net.Attr.t -> unit
val withdraw_origin : ?delay:float -> t -> int -> Net.Prefix.t -> unit

val set_link : ?delay:float -> t -> int -> int -> up:bool -> unit
(** Brings all sessions of the link up or down (and updates the graph). *)

val set_hooks : ?delay:float -> t -> int -> Rib_policy.hooks -> unit
(** Deploys an RPA (or restores native behaviour) on one device. *)

val set_egress_policy_all : ?delay:float -> t -> int -> Policy.t -> unit
(** E.g. applies a maintenance drain export policy on a device. *)

val set_ingress_policy : ?delay:float -> t -> node:int -> peer:int -> Policy.t -> unit

val drain_device : ?delay:float -> t -> int -> unit
(** Shorthand: applies {!Policy.drain} as the device's global export
    policy. *)

val undrain_device : ?delay:float -> t -> int -> unit

(** {1 Running} *)

val converge : ?max_events:int -> t -> int
(** Runs the event queue to quiescence; returns the number of events
    executed. Raises [Failure] if [max_events] (default 2_000_000) is
    reached, which indicates a persistent control-plane oscillation. *)

val run_until : t -> time:float -> int

(** {1 Inspection} *)

val fib : t -> int -> Net.Prefix.t -> Speaker.fib_state option
val fib_snapshot : t -> Net.Prefix.t -> (int * Speaker.fib_state) list
(** FIB state of every device for the prefix (devices without a route are
    omitted). *)

val env : t -> Speaker.env
(** The environment handed to speakers (for direct speaker manipulation in
    tests). *)
