(** A candidate BGP path as seen by one speaker: the attributes of a route
    together with the peer and session it was learned over.

    Sessions matter because several devices run multiple parallel BGP
    sessions to the same peer (Figure 5); hardware next-hop-group objects
    are per-port, i.e. per-session. *)

type t = {
  peer : int;     (** device id of the advertising peer *)
  session : int;  (** session index within the link, from 0 *)
  attr : Net.Attr.t;
}

val make : peer:int -> session:int -> attr:Net.Attr.t -> t

val as_path_length : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
