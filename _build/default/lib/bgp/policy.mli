(** Per-session BGP routing policy (the "base BGP policy" of the paper).

    A policy is an ordered list of rules; the first rule whose match clause
    accepts the route fires and its actions are applied (or the route is
    rejected). Routes matching no rule are accepted unchanged. This is the
    conventional low-level mechanism the paper contrasts with RPA: AS-path
    padding, local-pref manipulation, community tagging, maintenance drain
    policies, etc. *)

type match_clause = {
  m_prefixes : Net.Prefix.t list;
      (** Route's prefix must be covered by one of these; [[]] = any. *)
  m_communities : Net.Community.t list;
      (** Route must carry at least one; [[]] = any. *)
  m_as_path : Net.Path_regex.t option;  (** [None] = any *)
}

val match_any : match_clause

type action =
  | Accept
  | Reject
  | Set_local_pref of int
  | Set_med of int
  | Prepend_self of int  (** AS-path padding: own ASN, [n] times *)
  | Add_community of Net.Community.t
  | Remove_community of Net.Community.t
  | Set_link_bandwidth of int option

type rule = { matches : match_clause; actions : action list }

type t = rule list

val empty : t
(** Accepts everything unchanged. *)

val accept_all : t

val reject_all : t

val drain : t
(** A maintenance drain export policy: pad own ASN three times and tag the
    route with the {!Net.Community.Well_known.drained} community, making it
    strictly less favorable than any live path (Section 3.4's LIVE to
    MAINTENANCE transition). *)

val rule :
  ?prefixes:Net.Prefix.t list ->
  ?communities:Net.Community.t list ->
  ?as_path:string ->
  action list ->
  rule
(** Convenience constructor; [as_path] is compiled with
    {!Net.Path_regex.compile_exn}. *)

val matches : match_clause -> Net.Prefix.t -> Net.Attr.t -> bool

val apply : t -> self:Net.Asn.t -> Net.Prefix.t -> Net.Attr.t -> Net.Attr.t option
(** [None] means the route is rejected. *)

val pp : Format.formatter -> t -> unit
