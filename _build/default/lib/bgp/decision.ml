let attr_rank (p : Path.t) =
  let a = p.attr in
  (* Smaller tuple = more preferred. *)
  ( -a.Net.Attr.local_pref,
    Net.As_path.length a.Net.Attr.as_path,
    Net.Attr.origin_rank a.Net.Attr.origin,
    a.Net.Attr.med )

let preference_compare a b =
  let c = compare (attr_rank a) (attr_rank b) in
  if c <> 0 then c
  else
    let c = Int.compare a.Path.peer b.Path.peer in
    if c <> 0 then c else Int.compare a.Path.session b.Path.session

let equal_cost a b = attr_rank a = attr_rank b

let select ~multipath candidates =
  match List.sort preference_compare candidates with
  | [] -> ([], None)
  | best :: _ as sorted ->
    let set =
      if multipath then List.filter (equal_cost best) sorted else [ best ]
    in
    (set, Some best)

let least_favorable = function
  | [] -> None
  | first :: rest ->
    (* Maximal under the preference order = least favorable. *)
    Some
      (List.fold_left
         (fun worst p -> if preference_compare p worst > 0 then p else worst)
         first rest)
