(** The native BGP decision process (RFC 4271 section 9.1, restricted to the
    attributes this codebase models) with multipath.

    Preference order: highest LOCAL_PREF, then shortest AS-path, then lowest
    ORIGIN, then lowest MED, with (peer id, session) as the deterministic
    tie-break (standing in for lowest router id). Multipath ("ECMP group")
    gathers every path equal to the best on the first four criteria. *)

val preference_compare : Path.t -> Path.t -> int
(** Negative when the first path is {e more} preferred. Total order. *)

val equal_cost : Path.t -> Path.t -> bool
(** Equal on (local-pref, AS-path length, origin, MED) — the multipath
    criterion. *)

val select : multipath:bool -> Path.t list -> Path.t list * Path.t option
(** [select ~multipath candidates] is [(forwarding_set, best)]. With
    [multipath = false] the forwarding set is the singleton best path.
    [([], None)] when there are no candidates. *)

val least_favorable : Path.t list -> Path.t option
(** The path that the RPA dissemination rule advertises (Section 5.3.1):
    the one with the {e least} favorable attributes among those selected
    for forwarding, e.g. the longest AS-path. *)
