lib/bgp/path.ml: Format Int Net
