lib/bgp/rib_policy.mli: Net Path Topology
