lib/bgp/network.ml: Dsim Float Hashtbl List Net Option Policy Printf Speaker Topology Trace
