lib/bgp/decision.mli: Path
