lib/bgp/policy.mli: Format Net
