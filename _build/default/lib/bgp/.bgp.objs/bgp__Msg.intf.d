lib/bgp/msg.mli: Format Net
