lib/bgp/trace.ml: Hashtbl List Msg Net Speaker
