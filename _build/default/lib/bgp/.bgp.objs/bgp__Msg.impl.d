lib/bgp/msg.ml: Format Net
