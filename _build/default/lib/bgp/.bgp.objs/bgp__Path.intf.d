lib/bgp/path.mli: Format Net
