lib/bgp/speaker.ml: Decision Fun Hashtbl List Msg Net Option Path Policy Rib_policy Topology
