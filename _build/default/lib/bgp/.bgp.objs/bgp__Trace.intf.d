lib/bgp/trace.mli: Hashtbl Msg Net Speaker
