lib/bgp/rib_policy.ml: Net Path String Topology
