lib/bgp/policy.ml: Format List Net Option
