lib/bgp/network.mli: Dsim Net Policy Rib_policy Speaker Topology Trace
