lib/bgp/speaker.mli: Msg Net Path Policy Rib_policy Topology
