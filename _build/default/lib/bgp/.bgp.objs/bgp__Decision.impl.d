lib/bgp/decision.ml: Int List Net Path
