type selection = {
  selected : Path.t list;
  advertise : Path.t option;
  keep_fib_warm : bool;
}

type ctx = {
  device : int;
  prefix : Net.Prefix.t;
  now : float;
  peer_layer : int -> Topology.Node.layer option;
  live_peers_in_layer : Topology.Node.layer -> int;
}

type hooks = {
  name : string;
  ingress_accept : ctx -> peer:int -> Net.Attr.t -> bool;
  select : ctx -> candidates:Path.t list ->
           native:(Path.t list * Path.t option) -> selection;
  weights : ctx -> selected:Path.t list -> (Path.t * int) list option;
  egress_accept : ctx -> peer:int -> Net.Attr.t -> bool;
}

let native =
  {
    name = "native";
    ingress_accept = (fun _ ~peer:_ _ -> true);
    select =
      (fun _ ~candidates:_ ~native:(selected, advertise) ->
        { selected; advertise; keep_fib_warm = false });
    weights = (fun _ ~selected:_ -> None);
    egress_accept = (fun _ ~peer:_ _ -> true);
  }

let is_native hooks = String.equal hooks.name "native"
