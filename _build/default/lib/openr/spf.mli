(** Shortest-path-first computation over a link-state database.

    Dijkstra with equal-cost multipath: the route to each destination keeps
    every first hop that lies on some shortest path, matching Open/R's
    SPF-based routing. The LSDB is given as an adjacency function; an edge
    is used only if both endpoints advertise it (bidirectional check, as in
    real link-state protocols). *)

type routes = {
  distance : (int, float) Hashtbl.t;
  next_hops : (int, int list) Hashtbl.t;
      (** destination -> first hops on shortest paths, sorted *)
}

val compute :
  source:int -> adjacency:(int -> (int * float) list) -> nodes:int list -> routes
(** [adjacency n] lists [n]'s advertised (neighbor, metric) pairs;
    unadvertised nodes contribute nothing. *)

val reachable : routes -> int -> bool

val distance : routes -> int -> float option

val first_hops : routes -> int -> int list
