type routes = {
  distance : (int, float) Hashtbl.t;
  next_hops : (int, int list) Hashtbl.t;
}

(* A small binary heap of (distance, node) pairs would be overkill at the
   scales simulated here; a sorted-module Set gives O(log n) extraction and
   stays simple. *)
module Frontier = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let bidirectional adjacency a b =
  List.exists (fun (n, _) -> n = a) (adjacency b)

let compute ~source ~adjacency ~nodes =
  let distance = Hashtbl.create 64 in
  let next_hops = Hashtbl.create 64 in
  ignore nodes;
  Hashtbl.replace distance source 0.0;
  Hashtbl.replace next_hops source [];
  let frontier = ref (Frontier.singleton (0.0, source)) in
  while not (Frontier.is_empty !frontier) do
    let ((d, u) as elt) = Frontier.min_elt !frontier in
    frontier := Frontier.remove elt !frontier;
    let settled = Hashtbl.find_opt distance u = Some d in
    if settled then
      List.iter
        (fun (v, metric) ->
          if metric >= 0.0 && bidirectional adjacency u v then begin
            let alt = d +. metric in
            let hops_via_u =
              if u = source then [ v ]
              else Option.value (Hashtbl.find_opt next_hops u) ~default:[]
            in
            match Hashtbl.find_opt distance v with
            | Some best when alt > best +. 1e-12 -> ()
            | Some best when Float.abs (alt -. best) <= 1e-12 ->
              (* Equal cost: merge first hops. *)
              let merged =
                List.sort_uniq Int.compare
                  (hops_via_u
                   @ Option.value (Hashtbl.find_opt next_hops v) ~default:[])
              in
              Hashtbl.replace next_hops v merged
            | Some _ | None ->
              Hashtbl.replace distance v alt;
              Hashtbl.replace next_hops v (List.sort_uniq Int.compare hops_via_u);
              frontier := Frontier.add (alt, v) !frontier
          end)
        (adjacency u)
  done;
  { distance; next_hops }

let reachable routes node = Hashtbl.mem routes.distance node

let distance routes node = Hashtbl.find_opt routes.distance node

let first_hops routes node =
  Option.value (Hashtbl.find_opt routes.next_hops node) ~default:[]
