type node_state = {
  device : int;
  lsdb : (int, Lsa.t) Hashtbl.t;  (* originator -> freshest LSA *)
  mutable own_sequence : int;
}

type t = {
  topo : Topology.Graph.t;
  queue : Dsim.Event_queue.t;
  rng : Dsim.Rng.t;
  nodes : (int, node_state) Hashtbl.t;
}

let latency t = 0.0001 +. Dsim.Rng.exponential t.rng ~mean:0.0005

let state t device =
  match Hashtbl.find_opt t.nodes device with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Openr: unknown device %d" device)

let live_adjacencies t device =
  Topology.Graph.neighbors t.topo device
  |> List.map (fun ((n : Topology.Node.t), (link : Topology.Graph.link)) ->
         (n.Topology.Node.id, 1.0 /. Float.max link.Topology.Graph.capacity 1e-9))

(* Floods [lsa] from [device] to all live neighbors except [except]. *)
let rec flood t device ~except lsa =
  List.iter
    (fun ((n : Topology.Node.t), _) ->
      let neighbor = n.Topology.Node.id in
      if neighbor <> except then
        Dsim.Event_queue.schedule t.queue ~delay:(latency t) (fun () ->
            (* Deliver only if the link is still up. *)
            match Topology.Graph.find_link t.topo device neighbor with
            | Some link when link.Topology.Graph.up -> receive t neighbor ~from:device lsa
            | Some _ | None -> ()))
    (Topology.Graph.neighbors t.topo device)

and receive t device ~from lsa =
  let s = state t device in
  let fresh =
    match Hashtbl.find_opt s.lsdb lsa.Lsa.originator with
    | None -> true
    | Some existing -> Lsa.newer lsa ~than:existing
  in
  if fresh then begin
    Hashtbl.replace s.lsdb lsa.Lsa.originator lsa;
    flood t device ~except:from lsa
  end

let originate t device =
  let s = state t device in
  s.own_sequence <- s.own_sequence + 1;
  let lsa =
    Lsa.make ~originator:device ~sequence:s.own_sequence
      ~adjacencies:(live_adjacencies t device)
  in
  Hashtbl.replace s.lsdb device lsa;
  flood t device ~except:(-1) lsa

let create ?(seed = 17) topo =
  let t =
    {
      topo;
      queue = Dsim.Event_queue.create ();
      rng = Dsim.Rng.create seed;
      nodes = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (n : Topology.Node.t) ->
      Hashtbl.replace t.nodes n.Topology.Node.id
        { device = n.Topology.Node.id; lsdb = Hashtbl.create 64; own_sequence = 0 })
    (Topology.Graph.nodes topo);
  Hashtbl.iter (fun device _ -> originate t device) t.nodes;
  t

let converge ?(max_events = 2_000_000) t =
  let executed = Dsim.Event_queue.run ~max_events t.queue in
  if not (Dsim.Event_queue.is_empty t.queue) then
    failwith "Openr.Network.converge: no quiescence";
  executed

let link_event t a b ~up =
  ignore up;
  Dsim.Event_queue.schedule t.queue ~delay:0.0 (fun () ->
      originate t a;
      originate t b)

let routes_from t device =
  let s = state t device in
  let adjacency n =
    match Hashtbl.find_opt s.lsdb n with
    | Some lsa -> lsa.Lsa.adjacencies
    | None -> []
  in
  let nodes = Hashtbl.fold (fun originator _ acc -> originator :: acc) s.lsdb [] in
  Spf.compute ~source:device ~adjacency ~nodes

let reachable t ~src ~dst = Spf.reachable (routes_from t src) dst

let first_hops t ~src ~dst = Spf.first_hops (routes_from t src) dst

let lsdb_size t device = Hashtbl.length (state t device).lsdb

let converged t =
  let canonical = ref None in
  let digest s =
    Hashtbl.fold (fun k lsa acc -> (k, lsa.Lsa.sequence, lsa.Lsa.adjacencies) :: acc) s.lsdb []
    |> List.sort compare
  in
  Hashtbl.fold
    (fun _ s ok ->
      ok
      &&
      match !canonical with
      | None ->
        canonical := Some (digest s);
        true
      | Some d -> d = digest s)
    t.nodes true
