(** Link-state advertisements for the Open/R-style protocol.

    Open/R routes Meta's {e infrastructure} prefixes: device connectivity,
    management and diagnostics (Section 2 and Appendix A.2 of the paper).
    Each node originates an LSA describing its live adjacencies; LSAs are
    flooded network-wide and sequence numbers resolve staleness. *)

type t = {
  originator : int;       (** device id *)
  sequence : int;         (** monotonically increasing per originator *)
  adjacencies : (int * float) list;
      (** (neighbor, metric) pairs for live links, sorted by neighbor *)
}

val make : originator:int -> sequence:int -> adjacencies:(int * float) list -> t

val newer : t -> than:t -> bool
(** [newer a ~than:b] when both describe the same originator and [a] has a
    strictly higher sequence number. *)

val pp : Format.formatter -> t -> unit
