(** An event-driven network of Open/R-style link-state nodes.

    Each device floods an LSA describing its live adjacencies; every node
    maintains a full LSDB and computes SPF routes from it. In the paper's
    deployment this protocol is the resilient out-of-band management plane:
    the Centralium controller reaches switches over Open/R routes, with no
    circular dependency on the BGP state it manipulates (Appendix A.2).

    The module shares the topology graph with {!Bgp.Network} but runs its
    own event queue: the two protocols run concurrently on every layer and
    converge independently, as in production. *)

type t

val create : ?seed:int -> Topology.Graph.t -> t
(** Originates and floods initial LSAs; call {!converge}. *)

val converge : ?max_events:int -> t -> int

val link_event : t -> int -> int -> up:bool -> unit
(** Notifies both endpoints that the link changed; they re-originate and
    re-flood. (The graph itself is shared with the BGP network, so bring
    the link down there — or via {!Topology.Graph.set_link_up} — first.)
    Schedule-only; call {!converge}. *)

val routes_from : t -> int -> Spf.routes
(** SPF routes computed on the device's own LSDB. *)

val reachable : t -> src:int -> dst:int -> bool

val first_hops : t -> src:int -> dst:int -> int list

val lsdb_size : t -> int -> int
(** Number of LSAs the device holds. *)

val converged : t -> bool
(** All devices hold identical LSDBs. *)
