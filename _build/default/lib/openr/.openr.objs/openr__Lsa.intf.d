lib/openr/lsa.mli: Format
