lib/openr/network.mli: Spf Topology
