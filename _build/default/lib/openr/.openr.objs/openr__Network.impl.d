lib/openr/network.ml: Dsim Float Hashtbl List Lsa Printf Spf Topology
