lib/openr/lsa.ml: Format List Printf String
