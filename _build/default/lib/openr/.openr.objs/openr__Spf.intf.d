lib/openr/spf.mli: Hashtbl
