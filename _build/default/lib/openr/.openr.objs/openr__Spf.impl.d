lib/openr/spf.ml: Float Hashtbl Int List Option Set
