type t = {
  originator : int;
  sequence : int;
  adjacencies : (int * float) list;
}

let make ~originator ~sequence ~adjacencies =
  { originator; sequence; adjacencies = List.sort compare adjacencies }

let newer a ~than = a.originator = than.originator && a.sequence > than.sequence

let pp ppf t =
  Format.fprintf ppf "LSA(%d seq=%d adj=[%s])" t.originator t.sequence
    (String.concat "; "
       (List.map (fun (n, m) -> Printf.sprintf "%d:%.1f" n m) t.adjacencies))
