(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the scenario figures of Sections 3 and 5.

   Usage: dune exec bench/main.exe [-- SECTION ...]
   Sections: table1 fig3 fig2 fig4 fig5 fig9 fig10 fig11 fig12 fig13 fig14
             table2 table3 perf micro. Default: all of them, in order.

   Absolute numbers come from this repository's simulator on this machine;
   the claims being reproduced are the shapes (who wins, by what rough
   factor, where the pathologies appear). EXPERIMENTS.md records
   paper-vs-measured for each section. *)

let pf = Printf.printf

let header title paper_claim =
  pf "\n=== %s ===\n" title;
  pf "paper: %s\n" paper_claim;
  pf "---\n"

let pct x = 100.0 *. x

(* ------------------------------------------------------------------ *)
(* Structured output: every section also writes BENCH_<section>.json with
   its wall time, per-span wall-time percentiles, the full metrics
   snapshot, and whatever section-specific figures it pushed via [emit]. *)

let summary_json (s : Dsim.Stats.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.Dsim.Stats.count);
      ("mean", Obs.Json.Float s.Dsim.Stats.mean);
      ("min", Obs.Json.Float s.Dsim.Stats.min);
      ("max", Obs.Json.Float s.Dsim.Stats.max);
      ("p50", Obs.Json.Float s.Dsim.Stats.p50);
      ("p90", Obs.Json.Float s.Dsim.Stats.p90);
      ("p95", Obs.Json.Float s.Dsim.Stats.p95);
      ("p99", Obs.Json.Float s.Dsim.Stats.p99);
    ]

let bench_extra : (string * Obs.Json.t) list ref = ref []

let emit key value = bench_extra := (key, value) :: !bench_extra

let emit_summary key samples =
  if samples <> [] then emit key (summary_json (Dsim.Stats.summarize samples))

let span_summaries recorder =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Obs.Span.span) ->
      let ms = (s.Obs.Span.wall_stop_s -. s.Obs.Span.wall_start_s) *. 1000.0 in
      let cur = Option.value (Hashtbl.find_opt tbl s.Obs.Span.name) ~default:[] in
      Hashtbl.replace tbl s.Obs.Span.name (ms :: cur))
    (Obs.Span.spans recorder);
  Hashtbl.fold (fun name ds acc -> (name, ds) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (name, ds) -> (name, summary_json (Dsim.Stats.summarize ds)))

let run_section name f =
  bench_extra := [];
  Obs.Metrics.reset Obs.Metrics.default;
  Obs.Metrics.set_enabled Obs.Metrics.default true;
  let recorder = Obs.Span.create () in
  let t0 = Monotonic_clock.now () in
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled Obs.Metrics.default false)
    (fun () -> Obs.Span.with_recorder recorder f);
  let wall_ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
  let json =
    Obs.Json.Obj
      ([
         ("section", Obs.Json.String name);
         ("wall_ms", Obs.Json.Float wall_ms);
         ("spans_ms", Obs.Json.Obj (span_summaries recorder));
         ("metrics", Obs.Metrics.snapshot Obs.Metrics.default);
       ]
       @ List.rev !bench_extra)
  in
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Table 1: migration categories *)

let table1 () =
  header "Table 1: Network Migration Categories"
    "five categories; 10+/year except daily drains; durations 1h .. 6 months";
  pf "%-42s %-10s %-9s %s\n" "Migration" "Frequency" "Scope" "Typical Duration";
  List.iter
    (fun row ->
      let duration =
        let d = row.Topology.Migration.typical_duration_days in
        if d < 1.0 then "<1 hour"
        else if d >= 30.0 then Printf.sprintf "~%.1f months" (d /. 30.0)
        else Printf.sprintf "~%.0f days" d
      in
      pf "(%s) %-38s %-10s %-9s %s\n"
        (Topology.Migration.category_letter row.Topology.Migration.category)
        (Topology.Migration.category_label row.Topology.Migration.category)
        (Format.asprintf "%a" Topology.Migration.pp_frequency
           row.Topology.Migration.frequency)
        (Format.asprintf "%a" Topology.Migration.pp_scope
           row.Topology.Migration.scope)
        duration)
    Topology.Migration.table1

(* ------------------------------------------------------------------ *)
(* Figure 3: average switches involved per layer *)

let fig3 () =
  header "Figure 3: Average number of switches involved per layer"
    "most migrations involve tens of thousands of devices, more at lower \
     layers; maintenance drains involve hundreds";
  let rng = Dsim.Rng.create 2025 in
  let fleet = Topology.Migration.default_fleet in
  pf "%-38s %9s %9s %9s %9s %9s %10s\n" "Category" "RSW" "FSW" "SSW" "FADU"
    "FAUU" "total";
  List.iter
    (fun category ->
      let avg =
        Topology.Migration.average_switches_per_layer ~samples:200 ~rng fleet
          category
      in
      let v layer = Option.value (List.assoc_opt layer avg) ~default:0.0 in
      let layers =
        Topology.Node.[ Rsw; Fsw; Ssw; Fadu; Fauu ]
      in
      let total = List.fold_left (fun acc l -> acc +. v l) 0.0 layers in
      pf "(%s) %-34s %9.0f %9.0f %9.0f %9.0f %9.0f %10.0f\n"
        (Topology.Migration.category_letter category)
        (Topology.Migration.category_label category)
        (v Topology.Node.Rsw) (v Topology.Node.Fsw) (v Topology.Node.Ssw)
        (v Topology.Node.Fadu) (v Topology.Node.Fauu) total)
    Topology.Migration.all_categories

(* ------------------------------------------------------------------ *)
(* Scenario figures *)

let fig2 () =
  header "Figure 2 / Section 3.2: first-router problem in topology expansion"
    "native BGP funnels all traffic through the first activated FAv2; the \
     path-equalize RPA keeps the new node at a balanced share with no loss";
  let r = Experiments.Scenarios.Fig2.run () in
  pf "steady state before expansion: hottest FA carries %.0f%% of demand\n"
    (pct r.Experiments.Scenarios.Fig2.baseline_funnel);
  pf "first FAv2 activated, native BGP : FAv2 share = %.0f%%  (collapse)\n"
    (pct r.native_fav2_share);
  pf "first FAv2 activated, with RPA   : FAv2 share = %.0f%%  (balanced = %.0f%%)\n"
    (pct r.rpa_fav2_share) (pct r.balanced_share);
  pf "loss under RPA: %.2f%%\n" (pct r.rpa_loss)

let fig4 () =
  header "Figure 4 / Section 3.3: last-router problem in decommission"
    "draining FADU-1s funnels their group's traffic into the last live one; \
     the BgpNativeMinNextHop guard on SSW-1s caps the transient";
  let r = Experiments.Scenarios.Fig4.run () in
  pf "steady per-FADU-1 share                : %.1f%%\n"
    (pct r.Experiments.Scenarios.Fig4.steady_share);
  pf "worst transient share, native BGP      : %.1f%%  (%.1fx steady)\n"
    (pct r.native_worst_funnel)
    (r.native_worst_funnel /. r.steady_share);
  pf "worst transient share, with guard RPA  : %.1f%%  (%.1fx steady)\n"
    (pct r.rpa_worst_funnel)
    (r.rpa_worst_funnel /. r.steady_share)

let fig5 () =
  header "Figure 5 / Section 3.4: transient next-hop-group explosion"
    "per-session WCMP convergence multiplies next-hop groups (bound 4^8 = \
     65536 on the DU); Route Attribute RPAs prescribe weights a priori and \
     flatten it";
  let r = Experiments.Scenarios.Fig5.run () in
  pf "prefixes advertised by EB[1:8]        : %d\n"
    r.Experiments.Scenarios.Fig5.prefixes;
  pf "theoretical DU bound (4 states ^ 8 sessions): %d\n" r.theoretical_bound;
  pf "peak distinct NHGs on DU, native WCMP : %d\n" r.du_nhg_native;
  pf "peak distinct NHGs on DU, with RPA    : %d\n" r.du_nhg_rpa

let fig9 () =
  header "Figure 9 / Section 5.3.1: dissemination rule vs routing loops"
    "advertising the best selected path installs a persistent R5-R6 loop; \
     advertising the least favorable path prevents it";
  let r = Experiments.Scenarios.Fig9.run () in
  pf "advertise best path  : %d forwarding loop(s)%s, circulating volume %.2f\n"
    (List.length r.Experiments.Scenarios.Fig9.loops_with_best_advertised)
    (match r.loops_with_best_advertised with
     | cycle :: _ ->
       Printf.sprintf " (cycle: %s)"
         (String.concat "->" (List.map string_of_int cycle))
     | [] -> "")
    r.circulating_bad;
  pf "  flow-level: %.0f%% of flows die of TTL in the loop\n" (pct r.ttl_loss_bad);
  pf "advertise least favorable (the rule): %d loops, circulating volume %.2f\n"
    (List.length r.loops_with_rule)
    r.circulating_good;
  pf "  flow-level: %.0f%% TTL loss\n" (pct r.ttl_loss_good)

let fig10 () =
  header "Figure 10 / Section 5.3.2: RPA deployment sequencing"
    "uncoordinated rollout (FA1 first) transiently funnels all northbound \
     traffic through FA2; bottom-up phases stay balanced throughout";
  let r = Experiments.Scenarios.Fig10.run () in
  pf "worst FA share, RPA lands on FA1 first (uncoordinated): %.0f%%\n"
    (pct r.Experiments.Scenarios.Fig10.funnel_top_down);
  pf "worst FA share, safe bottom-up order                  : %.0f%%\n"
    (pct r.funnel_bottom_up);
  pf "balanced share                                        : %.0f%%\n"
    (pct r.balanced)

let fig14 () =
  header "Figure 14 / Section 7.2: KeepFibWarmIfMnhViolated SEV"
    "with the knob incorrectly set, the withheld-but-installed specific \
     route black-holes all traffic toward the not-production-ready FA";
  let r = Experiments.Scenarios.Fig14.run () in
  pf "black-holed share with the knob set   : %.0f%%\n"
    (pct r.Experiments.Scenarios.Fig14.blackholed_with_knob);
  pf "black-holed share without the knob    : %.0f%%\n"
    (pct r.blackholed_without_knob);
  pf "specific route leaked below SSWs      : %b (guard held either way)\n"
    r.propagated_past_ssw

(* ------------------------------------------------------------------ *)
(* Figure 11: controller CPU / memory CDFs *)

let fig11 () =
  header "Figure 11: CDFs of CPU and memory usage across controller tasks"
    "single-core-equivalent CPU peaks below 25% (75% of tasks under 15%); \
     memory peaks well below 3 GB (half under 1.5 GB)";
  let dcs = 6 in
  let services = ref [] in
  let started = Sys.time () in
  for dc = 0 to dcs - 1 do
    let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
    let net = Bgp.Network.create ~seed:(100 + dc) f.Topology.Clos.graph in
    List.iter
      (fun eb ->
        Bgp.Network.originate net eb Net.Prefix.default_v4
          (Net.Attr.make
             ~communities:
               (Net.Community.Set.singleton
                  Net.Community.Well_known.backbone_default_route)
             ()))
      f.Topology.Clos.ebs;
    ignore (Bgp.Network.converge net);
    let controller = Centralium.Controller.create ~seed:(200 + dc) net in
    let origin_asn =
      match f.Topology.Clos.ebs with
      | eb :: _ -> (Topology.Graph.node f.Topology.Clos.graph eb).Topology.Node.asn
      | [] -> assert false
    in
    let plan =
      Centralium.Apps.Path_equalize.plan f.Topology.Clos.graph
        ~destination:Centralium.Destination.backbone_default ~origin_asn
        ~targets:(f.Topology.Clos.fsws @ f.Topology.Clos.ssws)
        ~origination_layer:Topology.Node.Eb
    in
    (match Centralium.Controller.deploy controller plan with
     | Ok _ -> ()
     | Error es -> pf "fig11 deploy error: %s\n" (String.concat "; " es));
    (* Steady-state reconciliation sweeps (the agent's continuous loop). *)
    let agent = Centralium.Controller.agent controller in
    for _ = 1 to 20 do
      ignore
        (Centralium.Switch_agent.reconcile agent
           ~devices:(List.map fst plan.Centralium.Controller.rpas))
    done;
    services := Centralium.Controller.services controller @ !services
  done;
  let elapsed = Float.max 1e-6 (Sys.time () -. started) in
  let cpu =
    List.map
      (fun s -> pct (Centralium.Service.cpu_utilization s ~elapsed))
      !services
  in
  let mem =
    List.map
      (fun s -> float_of_int (Centralium.Service.memory_bytes s) /. 1e9)
      !services
  in
  pf "%d controller tasks across %d data centers\n" (List.length !services) dcs;
  pf "\n(a) single-core-equivalent CPU utilization (%%):\n";
  Format.printf "%a" (Dsim.Stats.pp_cdf_ascii ~width:40 ~unit_label:"%") (Dsim.Stats.cdf ~points:10 cpu);
  pf "(b) memory (GB):\n";
  Format.printf "%a" (Dsim.Stats.pp_cdf_ascii ~width:40 ~unit_label:"GB") (Dsim.Stats.cdf ~points:10 mem);
  let cpu_summary = Dsim.Stats.summarize cpu in
  emit_summary "cpu_pct" cpu;
  emit_summary "mem_gb" mem;
  emit "tasks" (Obs.Json.Int (List.length !services));
  pf "CPU max = %.1f%%  (paper: < 25%%)   memory max = %.2f GB (paper: < 3 GB)\n"
    cpu_summary.Dsim.Stats.max
    (Dsim.Stats.summarize mem).Dsim.Stats.max

(* ------------------------------------------------------------------ *)
(* Figure 12: CDF of RPA deployment time *)

let fig12 () =
  header "Figure 12: CDF of RPA deployment time (ms), FAUU layer"
    "most RPA updates complete within one millisecond";
  let f = Topology.Clos.fabric ~grids:4 ~fauus_per_grid:8 () in
  let net = Bgp.Network.create ~seed:7 f.Topology.Clos.graph in
  ignore (Bgp.Network.converge net);
  let agent = Centralium.Switch_agent.create ~seed:13 net in
  let rounds = 16 in
  for round = 1 to rounds do
    List.iter
      (fun fauu ->
        (* TE weight refreshes: a new RPA per round per FAUU. *)
        let weights =
          List.filter_map
            (fun ((n : Topology.Node.t), _) ->
              if Topology.Node.layer_equal n.Topology.Node.layer Topology.Node.Eb
              then Some (n.Topology.Node.id, 1 + ((round + n.Topology.Node.id) mod 16))
              else None)
            (Topology.Graph.neighbors f.Topology.Clos.graph fauu)
        in
        let rpa =
          Centralium.Apps.Te_weights.rpa_for_device f.Topology.Clos.graph
            ~destination:Centralium.Destination.backbone_default ~device:fauu
            ~weights ()
        in
        Centralium.Switch_agent.set_intended agent ~device:fauu rpa;
        ignore (Centralium.Switch_agent.reconcile_device agent fauu))
      f.Topology.Clos.fauus;
    ignore (Bgp.Network.converge net)
  done;
  let samples_ms =
    List.map (fun s -> s *. 1000.0) (Centralium.Switch_agent.deploy_time_samples agent)
  in
  pf "%d RPA deployments to %d FAUUs\n" (List.length samples_ms)
    (List.length f.Topology.Clos.fauus);
  Format.printf "%a" (Dsim.Stats.pp_cdf_ascii ~width:40 ~unit_label:"ms") (Dsim.Stats.cdf ~points:12 samples_ms);
  emit_summary "deploy_ms" samples_ms;
  emit "deployments" (Obs.Json.Int (List.length samples_ms));
  let s = Dsim.Stats.summarize samples_ms in
  pf "p50 = %.3f ms, p95 = %.3f ms, p99 = %.3f ms; %.0f%% under 1 ms\n"
    s.Dsim.Stats.p50 s.Dsim.Stats.p95 s.Dsim.Stats.p99
    (pct
       (float_of_int (List.length (List.filter (fun x -> x < 1.0) samples_ms))
        /. float_of_int (List.length samples_ms)))

(* ------------------------------------------------------------------ *)
(* Table 2: RPA evaluation time per route, cache miss vs hit *)

let table2_rpa () =
  (* A production-sized Path Selection RPA: many destination groups, each
     with regex-signed path sets. *)
  let statements =
    List.init 40 (fun i ->
        Centralium.Path_selection.statement
          ~name:(Printf.sprintf "group-%d" i)
          ~path_sets:
            [
              Centralium.Path_selection.path_set ~name:"preferred"
                (Centralium.Signature.make
                   ~as_path_regex:(Printf.sprintf "^%d .* %d$" (65000 + i) (64000 + i))
                   ());
              Centralium.Path_selection.path_set ~name:"fallback"
                (Centralium.Signature.make
                   ~as_path_regex:(Printf.sprintf ".* %d$" (64000 + i))
                   ());
            ]
          (Centralium.Destination.Tagged (Net.Community.make 65100 (200 + i))))
  in
  Centralium.Rpa.make
    ~path_selection:[ Centralium.Path_selection.make statements ]
    ()

let table2_routes n =
  let rng = Dsim.Rng.create 99 in
  List.init n (fun i ->
      let group = i mod 40 in
      let middle =
        List.init (3 + Dsim.Rng.int rng 10) (fun _ ->
            Net.Asn.of_int (60000 + Dsim.Rng.int rng 4000))
      in
      let as_path =
        Net.As_path.of_asns
          ((Net.Asn.of_int (65000 + group) :: middle)
           @ [ Net.Asn.of_int (64000 + group) ])
      in
      let attr =
        Net.Attr.make ~as_path
          ~communities:
            (Net.Community.Set.singleton (Net.Community.make 65100 (200 + group)))
          ()
      in
      Bgp.Path.make ~peer:(i mod 7) ~session:0 ~attr)

let table2_ctx prefix =
  {
    Bgp.Rib_policy.device = 0;
    prefix;
    now = 0.0;
    peer_layer = (fun _ -> Some Topology.Node.Fauu);
    live_peers_in_layer = (fun _ -> 8);
  }

let table2 () =
  header "Table 2: RPA evaluation time per route (ms)"
    "w/o cache: p50 < 1, p95 = 2, p99 = 4; w/ cache: all < 1";
  let rpa = table2_rpa () in
  let routes = table2_routes 20_000 in
  let prefix = Net.Prefix.of_string_exn "10.0.0.0/8" in
  let ctx = table2_ctx prefix in
  let time_pass engine =
    List.map
      (fun route ->
        let candidates = [ route ] in
        let native = Bgp.Decision.select ~multipath:true candidates in
        let t0 = Monotonic_clock.now () in
        ignore (Centralium.Engine.evaluate_selection engine ~ctx ~candidates ~native);
        Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6)
      routes
  in
  let engine = Centralium.Engine.create ~cache:true rpa in
  let cold = time_pass engine in
  let warm = time_pass engine in
  let fmt v = if v < 1.0 then "<1" else Printf.sprintf "%.0f" v in
  let row label samples =
    let s = Dsim.Stats.summarize samples in
    pf "%-10s p50 = %-4s p95 = %-4s p99 = %-4s (exact: %.4f / %.4f / %.4f ms)\n"
      label (fmt s.Dsim.Stats.p50) (fmt s.Dsim.Stats.p95) (fmt s.Dsim.Stats.p99)
      s.Dsim.Stats.p50 s.Dsim.Stats.p95 s.Dsim.Stats.p99
  in
  row "w/o cache" cold;
  row "w/ cache" warm;
  let stats = Centralium.Engine.stats engine in
  let mean = Dsim.Stats.mean in
  emit_summary "cold_eval_ms" cold;
  emit_summary "warm_eval_ms" warm;
  emit "cache_hits" (Obs.Json.Int stats.Centralium.Engine.hits);
  emit "cache_misses" (Obs.Json.Int stats.Centralium.Engine.misses);
  pf "cache: %d hits / %d misses; mean speedup miss/hit = %.1fx\n"
    stats.Centralium.Engine.hits stats.Centralium.Engine.misses
    (mean cold /. Float.max 1e-9 (mean warm))

(* ------------------------------------------------------------------ *)
(* Table 3: operational efficiency *)

let table3 () =
  header "Table 3: steps and days per migration, with and without RPA"
    "(a) 2->1 steps, 42-><1 days; (b) 9->3, 189->21; (c) 3->1, 63->7; \
     (d) 5->3, 105->21; (e) 3->1, <1-><1; RPA LOC 300-1000 / 200-300 / \
     50-100 / 100-200 / <50";
  pf "%-4s %8s %7s %9s %8s %8s\n" "" "#Steps" "#Steps" "#Days" "#Days" "RPA";
  pf "%-4s %8s %7s %9s %8s %8s\n" "" "w/o RPA" "w RPA" "w/o RPA" "w/ RPA" "LOC";
  List.iter
    (fun row ->
      let days plan =
        let d = Planner.duration_days plan in
        if d < 1.0 then "<1" else Printf.sprintf "%.0f" d
      in
      pf "(%s) %8d %7d %9s %8s %8d\n"
        (Topology.Migration.category_letter row.Planner.category)
        (Planner.step_count row.Planner.without_rpa)
        (Planner.step_count row.Planner.with_rpa)
        (days row.Planner.without_rpa)
        (days row.Planner.with_rpa)
        row.Planner.rpa_loc)
    (Planner.table3 ());
  pf "(critical-path steps; config pushes ride the %.0f-day fleet cadence)\n"
    Planner.push_cadence_days

(* ------------------------------------------------------------------ *)
(* Figure 13: near-optimal centralized TE *)

let fig13 () =
  header "Figure 13 / Section 6.4: effective capacity under maintenance"
    "RPA-driven TE tracks ideal WCMP closely and beats ECMP; the gained \
     headroom unblocks up to 45% of otherwise-blocked maintenance";
  let r = Experiments.Scenarios.Fig13.run ~events:40 () in
  pf "%-8s %8s %12s %12s %12s\n" "event" "drained" "ECMP" "RPA-TE" "ideal WCMP";
  List.iter
    (fun e ->
      if e.Experiments.Scenarios.Fig13.event_id mod 5 = 0 then
        pf "%-8d %8d %12.2f %12.2f %12.2f\n" e.event_id e.drained_links
          e.ecmp_capacity e.rpa_capacity e.ideal_capacity)
    r.Experiments.Scenarios.Fig13.events;
  pf "mean effective capacity vs ideal: RPA-TE = %.1f%%, ECMP = %.1f%%\n"
    (pct r.mean_rpa_over_ideal) (pct r.mean_ecmp_over_ideal);
  pf "maintenance events unblocked by TE (blocked under ECMP): %.0f%%\n"
    (pct r.unblocked_fraction)

(* ------------------------------------------------------------------ *)
(* Section 6.2 performance claims *)

let perf () =
  header "Section 6.2: RPA generation and deployment performance"
    "RPA generation for a full DC consistently under 200 ms";
  let f =
    Topology.Clos.fabric ~pods:48 ~rsws_per_pod:48 ~fsws_per_pod:4
      ~ssws_per_plane:36 ~grids:4 ~fauus_per_grid:9 ~ebs:8 ()
  in
  let devices = Topology.Graph.node_count f.Topology.Clos.graph in
  let origin_asn =
    match f.Topology.Clos.ebs with
    | eb :: _ -> (Topology.Graph.node f.Topology.Clos.graph eb).Topology.Node.asn
    | [] -> assert false
  in
  let targets =
    f.Topology.Clos.rsws @ f.Topology.Clos.fsws @ f.Topology.Clos.ssws
    @ f.Topology.Clos.fadus @ f.Topology.Clos.fauus
  in
  let t0 = Monotonic_clock.now () in
  let plan =
    Centralium.Apps.Path_equalize.plan f.Topology.Clos.graph
      ~destination:Centralium.Destination.backbone_default ~origin_asn ~targets
      ~origination_layer:Topology.Node.Eb
  in
  let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
  emit "devices" (Obs.Json.Int devices);
  emit "rpas" (Obs.Json.Int (List.length plan.Centralium.Controller.rpas));
  emit "phases" (Obs.Json.Int (List.length plan.Centralium.Controller.phases));
  emit "generation_ms" (Obs.Json.Float ms);
  pf "full-DC topology: %d devices; generated %d per-switch RPAs in %.1f ms \
      (%d deployment phases)\n"
    devices
    (List.length plan.Centralium.Controller.rpas)
    ms
    (List.length plan.Centralium.Controller.phases)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let micro () =
  header "Micro-benchmarks (bechamel, ns/run)"
    "per-operation costs behind Table 2, Figure 12 and Section 6.2";
  let open Bechamel in
  let rpa = table2_rpa () in
  let routes = Array.of_list (table2_routes 256) in
  let prefix = Net.Prefix.of_string_exn "10.0.0.0/8" in
  let ctx = table2_ctx prefix in
  let warm_engine = Centralium.Engine.create ~cache:true rpa in
  Array.iter
    (fun route ->
      let candidates = [ route ] in
      let native = Bgp.Decision.select ~multipath:true candidates in
      ignore
        (Centralium.Engine.evaluate_selection warm_engine ~ctx ~candidates ~native))
    routes;
  let counter = ref 0 in
  let eval engine () =
    let route = routes.(!counter mod Array.length routes) in
    incr counter;
    let candidates = [ route ] in
    let native = Bgp.Decision.select ~multipath:true candidates in
    ignore (Centralium.Engine.evaluate_selection engine ~ctx ~candidates ~native)
  in
  let regex = Net.Path_regex.compile_exn "^65001 .* 64001$" in
  let sample_path =
    Net.As_path.of_asns (List.map Net.Asn.of_int [ 65001; 63000; 62000; 64001 ])
  in
  let db = Centralium.Nsdb.create () in
  let nsdb_counter = ref 0 in
  let tests =
    [
      Test.make ~name:"table2/rpa-eval-cache-miss"
        (Staged.stage (eval (Centralium.Engine.create ~cache:false rpa)));
      Test.make ~name:"table2/rpa-eval-cache-hit" (Staged.stage (eval warm_engine));
      Test.make ~name:"fig12/engine-build"
        (Staged.stage (fun () -> ignore (Centralium.Engine.create rpa)));
      Test.make ~name:"perf/path-regex-match"
        (Staged.stage (fun () -> ignore (Net.Path_regex.matches regex sample_path)));
      Test.make ~name:"fig11/nsdb-set"
        (Staged.stage (fun () ->
             incr nsdb_counter;
             Centralium.Nsdb.set db
               ~path:(Printf.sprintf "devices/%d/rpa" (!nsdb_counter mod 512))
               (Centralium.Nsdb.Int !nsdb_counter)));
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"centralium" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let estimates = ref [] in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (estimate :: _) ->
           estimates := (name, Obs.Json.Float estimate) :: !estimates;
           pf "%-40s %12.0f ns/run\n" name estimate
         | Some [] | None -> pf "%-40s (no estimate)\n" name);
  emit "estimates_ns" (Obs.Json.Obj (List.rev !estimates))

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out *)

let ablations () =
  header "Ablations: guard threshold, NHG scale, weight quantization"
    "design-choice sweeps behind Sections 4.4.2, 3.4 and 6.4";

  pf "(1) BgpNativeMinNextHop threshold vs worst transient funnel (Fig 4 \
      setup; steady per-FADU-1 share is ~3.1%%):\n";
  let thresholds = [ None; Some 0.25; Some 0.5; Some 0.75; Some 1.0 ] in
  List.iter
    (fun (guard, worst) ->
      pf "    %-12s worst funnel = %5.1f%%\n"
        (match guard with
         | None -> "no guard"
         | Some f -> Printf.sprintf "%.0f%%" (100.0 *. f))
        (pct worst))
    (Experiments.Scenarios.Fig4.sweep ~thresholds ());

  pf "\n(2) next-hop-group explosion vs number of prefixes (Fig 5 setup, \
      native WCMP):\n";
  List.iter
    (fun prefixes ->
      let r = Experiments.Scenarios.Fig5.run ~prefixes () in
      pf "    %4d prefixes: peak %3d groups (RPA: %d)\n" prefixes
        r.Experiments.Scenarios.Fig5.du_nhg_native r.du_nhg_rpa)
    [ 8; 16; 32; 64; 128 ];

  pf "\n(3) link-bandwidth quantization levels vs TE quality (Fig 13 \
      setup, mean effective capacity relative to ideal):\n";
  List.iter
    (fun levels ->
      let r = Experiments.Scenarios.Fig13.run ~events:20 ~levels () in
      pf "    %3d levels: RPA-TE = %5.1f%% of ideal\n" levels
        (pct r.Experiments.Scenarios.Fig13.mean_rpa_over_ideal))
    [ 2; 4; 8; 16; 64 ];

  pf "\n(4) RPA vs compiled low-level policy (Section 7.4 indirect \
      approach) on the Figure 2 expansion:\n";
  let x = Topology.Clos.expansion () in
  let fav2 = Topology.Clos.add_fav2 x in
  let fav2_share net =
    let demands = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
    let result =
      Dataplane.Traffic.route_prefix net Net.Prefix.default_v4 ~demands
    in
    Dataplane.Metrics.transit_share result ~device:fav2
      ~total:(Dataplane.Traffic.total_demand demands)
  in
  let tagged () =
    Net.Attr.make
      ~communities:
        (Net.Community.Set.singleton
           Net.Community.Well_known.backbone_default_route)
      ()
  in
  let equalize_intent =
    Centralium.Rpa.make
      ~path_selection:
        [
          Centralium.Path_selection.make
            [
              Centralium.Path_selection.statement ~name:"equalize"
                ~path_sets:
                  [ Centralium.Path_selection.path_set ~name:"all"
                      Centralium.Signature.any ]
                Centralium.Destination.backbone_default;
            ];
        ]
      ()
  in
  let net = Bgp.Network.create ~seed:71 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4 (tagged ());
  ignore (Bgp.Network.converge net);
  let compiled =
    Centralium.Fallback_compiler.compile x.xgraph
      ~origination_layer:Topology.Node.Eb
      ~targets:(x.xfsws @ x.xssws) equalize_intent
  in
  Centralium.Fallback_compiler.apply net compiled;
  ignore (Bgp.Network.converge net);
  pf "    compiled AS-path padding : FAv2 share %.0f%% (balanced)\n"
    (pct (fav2_share net));
  Centralium.Fallback_compiler.remove net compiled;
  ignore (Bgp.Network.converge net);
  pf "    after policy cleanup     : FAv2 share %.0f%% (the collapse \
      returns; an RPA removal would not do this)\n"
    (pct (fav2_share net));

  pf "\n(5) dissemination rule and deployment ordering: see fig9 and fig10 \
      (both run the unsafe variant as the ablation).\n"

(* ------------------------------------------------------------------ *)
(* Simulator scaling *)

let scale () =
  header "Simulator scaling: convergence cost vs fabric size"
    "(not a paper figure) the substrate itself: events, messages and wall \
     time to converge a default route over growing fabrics";
  pf "%8s %8s %10s %10s %10s\n" "devices" "links" "events" "messages" "wall ms";
  let rows = ref [] in
  List.iter
    (fun pods ->
      let f = Topology.Clos.fabric ~pods ~rsws_per_pod:pods () in
      let net = Bgp.Network.create ~seed:5 f.Topology.Clos.graph in
      List.iter
        (fun eb ->
          Bgp.Network.originate net eb Net.Prefix.default_v4
            (Net.Attr.make
               ~communities:
                 (Net.Community.Set.singleton
                    Net.Community.Well_known.backbone_default_route)
               ()))
        f.Topology.Clos.ebs;
      let t0 = Monotonic_clock.now () in
      let events = Bgp.Network.converge net in
      let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
      let messages = Bgp.Trace.messages_sent (Bgp.Network.trace net) in
      let devices = Topology.Graph.node_count f.Topology.Clos.graph in
      let links = List.length (Topology.Graph.links f.Topology.Clos.graph) in
      rows :=
        Obs.Json.Obj
          [
            ("devices", Obs.Json.Int devices);
            ("links", Obs.Json.Int links);
            ("events", Obs.Json.Int events);
            ("messages", Obs.Json.Int messages);
            ("wall_ms", Obs.Json.Float ms);
          ]
        :: !rows;
      pf "%8d %8d %10d %10d %10.1f\n" devices links events messages ms)
    [ 2; 4; 8; 12 ];
  emit "rows" (Obs.Json.List (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* Management-plane chaos: resilient deploy under faults, crash+resume *)

let chaos () =
  header "Chaos: resilient deployment under management-plane faults"
    "crash+resume vs uninterrupted, flaky RPC/NSDB fates, 3 seeds";
  let digests_matched = ref 0 in
  let retries = ref [] in
  let backoffs = ref [] in
  let seeds = [ 42; 43; 44 ] in
  List.iter
    (fun seed ->
      let c =
        Experiments.Scenarios.Faulted_deploy.crash_vs_uninterrupted ~seed ()
      in
      let i = c.Experiments.Scenarios.Faulted_deploy.interrupted in
      if c.Experiments.Scenarios.Faulted_deploy.digests_match then
        incr digests_matched;
      retries := float_of_int i.retries :: !retries;
      backoffs := List.map (fun s -> s *. 1000.0) i.backoff_seconds @ !backoffs;
      pf "seed %d: %s after crash+resume, %d retries, digests %s\n" seed
        i.outcome i.retries
        (if c.Experiments.Scenarios.Faulted_deploy.digests_match then "match"
         else "DIFFER"))
    seeds;
  pf "digest matches: %d/%d\n" !digests_matched (List.length seeds);
  emit "digests_matched" (Obs.Json.Int !digests_matched);
  emit "seeds" (Obs.Json.Int (List.length seeds));
  emit_summary "retries" !retries;
  emit_summary "backoff_ms" !backoffs

(* ------------------------------------------------------------------ *)
(* Data-plane chaos: blackhole-seconds with and without graceful restart *)

let chaos_gr () =
  header "Chaos: blackhole-seconds, graceful restart on vs off"
    "severe message faults + origin/FA restarts, session liveness timers, \
     identical seeds per mode, 3 seeds";
  let seeds = [ 42; 43; 44 ] in
  let wins = ref 0 and clean = ref 0 in
  let bh_on = ref [] and bh_off = ref [] in
  pf "%6s %14s %14s %10s %8s %8s\n" "seed" "bh-sec GR on" "bh-sec GR off"
    "reduction" "sweeps" "finals";
  let rows = ref [] in
  List.iter
    (fun seed ->
      let r = Experiments.Scenarios.Chaos.run ~seed () in
      let on = r.Experiments.Scenarios.Chaos.gr_on
      and off = r.Experiments.Scenarios.Chaos.gr_off in
      if r.Experiments.Scenarios.Chaos.gr_wins then incr wins;
      let finals =
        List.length on.final_violations + List.length off.final_violations
      in
      if finals = 0 then incr clean;
      bh_on := on.blackhole_seconds :: !bh_on;
      bh_off := off.blackhole_seconds :: !bh_off;
      pf "%6d %14.6f %14.6f %9.1f%% %8d %8d\n" seed on.blackhole_seconds
        off.blackhole_seconds
        (100.0 *. (1.0 -. (on.blackhole_seconds /. off.blackhole_seconds)))
        on.stale_sweeps finals;
      rows :=
        Obs.Json.Obj
          [
            ("seed", Obs.Json.Int seed);
            ("gr_on_blackhole_seconds", Obs.Json.Float on.blackhole_seconds);
            ("gr_off_blackhole_seconds", Obs.Json.Float off.blackhole_seconds);
            ("gr_on_loss_seconds", Obs.Json.Float on.loss_seconds);
            ("gr_off_loss_seconds", Obs.Json.Float off.loss_seconds);
            ("gr_wins", Obs.Json.Bool r.gr_wins);
            ("final_violations", Obs.Json.Int finals);
          ]
        :: !rows)
    seeds;
  pf "graceful restart won %d/%d seeds; %d/%d quiesced violation-free\n"
    !wins (List.length seeds) !clean (List.length seeds);
  emit "rows" (Obs.Json.List (List.rev !rows));
  emit "gr_wins" (Obs.Json.Int !wins);
  emit "seeds" (Obs.Json.Int (List.length seeds));
  emit_summary "blackhole_seconds_gr_on" !bh_on;
  emit_summary "blackhole_seconds_gr_off" !bh_off

(* ------------------------------------------------------------------ *)
(* Controller HA: leader failover latency and fencing under chaos *)

let ha () =
  header "HA: lease failover, fencing epochs, deterministic takeover"
    "leader killed mid-rollout at per-seed offsets, 3-member cluster, \
     standby resumes from the journal, digests vs uninterrupted, 3 seeds";
  let seeds = [ 42; 43; 44 ] in
  let matched = ref 0 and clean = ref 0 in
  let takeovers = ref [] and elections = ref [] in
  let rows = ref [] in
  pf "%6s %9s %10s %12s %11s %8s %8s\n" "seed" "crash@ms" "elections"
    "takeover ms" "completed by" "applied" "in-sync";
  List.iteri
    (fun k seed ->
      let offset = 0.02 +. (0.007 *. float_of_int k) in
      let c =
        Experiments.Scenarios.Failover.crash_vs_uninterrupted ~seed
          ~leader_crash_offsets:[ offset ] ()
      in
      let i = c.Experiments.Scenarios.Failover.interrupted in
      if c.Experiments.Scenarios.Failover.digests_match then incr matched;
      let violations =
        List.length i.ha_violations
        + List.length i.phase_violations
        + List.length i.final_violations
      in
      if violations = 0 then incr clean;
      takeovers := List.rev_append i.takeover_ms !takeovers;
      elections := float_of_int i.elections :: !elections;
      pf "%6d %9.0f %10d %12s %11s %8d %8d\n" seed (offset *. 1000.)
        i.elections
        (String.concat ","
           (List.map (Printf.sprintf "%.1f") i.takeover_ms))
        (match i.completed_by with
         | Some m -> string_of_int m
         | None -> "-")
        i.applied i.skipped_in_sync;
      rows :=
        Obs.Json.Obj
          [
            ("seed", Obs.Json.Int seed);
            ("crash_at_s", Obs.Json.Float offset);
            ("outcome", Obs.Json.String i.outcome);
            ("elections", Obs.Json.Int i.elections);
            ( "takeover_ms",
              Obs.Json.List
                (List.map (fun t -> Obs.Json.Float t) i.takeover_ms) );
            ("applied", Obs.Json.Int i.applied);
            ("skipped_in_sync", Obs.Json.Int i.skipped_in_sync);
            ("violations", Obs.Json.Int violations);
            ( "digests_match",
              Obs.Json.Bool c.Experiments.Scenarios.Failover.digests_match );
          ]
        :: !rows)
    seeds;
  pf
    "digest matches: %d/%d; violation-free (dual-leader, stale-epoch, \
     forwarding): %d/%d\n"
    !matched (List.length seeds) !clean (List.length seeds);
  emit "rows" (Obs.Json.List (List.rev !rows));
  emit "digests_matched" (Obs.Json.Int !matched);
  emit "violation_free" (Obs.Json.Int !clean);
  emit "seeds" (Obs.Json.Int (List.length seeds));
  emit_summary "takeover_ms" !takeovers;
  emit_summary "elections" !elections

(* ------------------------------------------------------------------ *)
(* Decision pipeline: incremental (dirty-set) vs the full-table oracle *)

let decision () =
  header "Decision pipeline: incremental (dirty-set) vs full-table oracle"
    "bit-identical traces and FIBs; chaos decision count drops >= 5x";
  let seeds = [ 42; 7; 1 ] in
  let iters = 5 in
  let decisions = Obs.Metrics.counter "bgp.speaker.decisions" in
  let chaos_once mode seed =
    ignore
      (Experiments.Scenarios.Chaos.run_mode ~seed ~eval_mode:mode ~gr:true ())
  in
  let measure mode =
    (* Decision counts are deterministic per seed: one counting pass. *)
    Obs.Metrics.reset Obs.Metrics.default;
    List.iter (chaos_once mode) seeds;
    let count = Obs.Metrics.value decisions in
    (* Timed passes: every [network.converge] interval, from spans. The
       cap must clear [iters] full-table chaos runs' decision spans, or
       the later converge spans get dropped and skew the percentiles. *)
    let recorder = Obs.Span.create ~max_spans:1_000_000 () in
    Obs.Span.with_recorder recorder (fun () ->
        for _ = 1 to iters do
          List.iter (chaos_once mode) seeds
        done);
    let ms =
      List.map
        (fun s -> s *. 1000.0)
        (Obs.Span.durations_s recorder ~name:"network.converge")
    in
    (count, Dsim.Stats.summarize ms)
  in
  let full_count, full_s = measure Bgp.Speaker.Full_table in
  let incr_count, incr_s = measure Bgp.Speaker.Incremental in
  let ratio = float_of_int full_count /. float_of_int incr_count in
  let p50_speedup = full_s.Dsim.Stats.p50 /. incr_s.Dsim.Stats.p50 in
  let p99_speedup = full_s.Dsim.Stats.p99 /. incr_s.Dsim.Stats.p99 in
  pf "%-12s %10s %14s %14s\n" "mode" "decisions" "converge p50" "converge p99";
  pf "%-12s %10d %12.3fms %12.3fms\n" "full-table" full_count
    full_s.Dsim.Stats.p50 full_s.Dsim.Stats.p99;
  pf "%-12s %10d %12.3fms %12.3fms\n" "incremental" incr_count
    incr_s.Dsim.Stats.p50 incr_s.Dsim.Stats.p99;
  pf "decision ratio %.2fx; converge p50 %.2fx, p99 %.2fx faster\n" ratio
    p50_speedup p99_speedup;
  let mode_json count s =
    Obs.Json.Obj
      [ ("decisions", Obs.Json.Int count); ("converge_ms", summary_json s) ]
  in
  emit "seeds" (Obs.Json.Int (List.length seeds));
  emit "iters" (Obs.Json.Int iters);
  emit "full_table" (mode_json full_count full_s);
  emit "incremental" (mode_json incr_count incr_s);
  emit "decision_ratio" (Obs.Json.Float ratio);
  emit "converge_p50_speedup" (Obs.Json.Float p50_speedup);
  emit "converge_p99_speedup" (Obs.Json.Float p99_speedup)

(* ------------------------------------------------------------------ *)
(* Causal tracing: enabled vs disabled converge cost.

   The disabled path — every recording site behind a single [Obs.Causal.on]
   bool test — is exactly what the gated [decision] section times, so any
   regression in disabled-tracing overhead trips the bench-decision
   p50/p99 gate above. This section quantifies the *enabled* path on the
   same chaos converge workload so the recording cost stays visible. *)

let causal () =
  header "Causal tracing: enabled vs disabled converge cost"
    "disabled path rides the bench-decision gate; enabled path measured here";
  let seeds = [ 42; 7; 1 ] in
  let iters = 5 in
  let measure traced =
    let recorder = Obs.Span.create ~max_spans:1_000_000 () in
    let events = ref 0 in
    Obs.Span.with_recorder recorder (fun () ->
        for _ = 1 to iters do
          List.iter
            (fun seed ->
              let once () =
                ignore (Experiments.Scenarios.Chaos.run_mode ~seed ~gr:true ())
              in
              if traced then begin
                (* Fresh log per run: bounds recorder growth and matches how
                   [centralium trace] uses the layer. *)
                let log = Obs.Causal.create () in
                Obs.Causal.with_recorder log once;
                events := !events + Obs.Causal.length log
              end
              else once ())
            seeds
        done);
    let ms =
      List.map
        (fun s -> s *. 1000.0)
        (Obs.Span.durations_s recorder ~name:"network.converge")
    in
    (!events, Dsim.Stats.summarize ms)
  in
  let _, off_s = measure false in
  let events_on, on_s = measure true in
  let overhead_p50 = on_s.Dsim.Stats.p50 /. off_s.Dsim.Stats.p50 in
  let overhead_p99 = on_s.Dsim.Stats.p99 /. off_s.Dsim.Stats.p99 in
  pf "%-12s %14s %14s\n" "tracing" "converge p50" "converge p99";
  pf "%-12s %12.3fms %12.3fms\n" "disabled" off_s.Dsim.Stats.p50
    off_s.Dsim.Stats.p99;
  pf "%-12s %12.3fms %12.3fms\n" "enabled" on_s.Dsim.Stats.p50
    on_s.Dsim.Stats.p99;
  pf "enabled/disabled overhead: p50 %.2fx, p99 %.2fx (%d events recorded)\n"
    overhead_p50 overhead_p99 events_on;
  emit "seeds" (Obs.Json.Int (List.length seeds));
  emit "iters" (Obs.Json.Int iters);
  emit "disabled" (summary_json off_s);
  emit "enabled" (summary_json on_s);
  emit "causal_events" (Obs.Json.Int events_on);
  emit "causal_overhead_p50" (Obs.Json.Float overhead_p50);
  emit "causal_overhead_p99" (Obs.Json.Float overhead_p99)

let ops () =
  header "ops: continuous operations under overload"
    "hourly submission bursts through the bounded admission queue, async \
     NSDB replicas, watchdog canary rollbacks; 4 simulated hours, 2 seeds";
  let seeds = [ 42; 43 ] in
  let waits = ref [] and lags = ref [] and pph = ref [] in
  let rows = ref [] in
  pf "%6s %10s %8s %10s %13s %12s %10s\n" "seed" "admitted" "shed"
    "rolled-back" "wait p99 ms" "lag p99 ops" "plans/h";
  List.iter
    (fun seed ->
      let r = Experiments.Scenarios.Continuous.run ~seed ~hours:4 () in
      waits := r.Experiments.Scenarios.Continuous.queue_wait_p99_s :: !waits;
      lags := r.replica_lag_p99 :: !lags;
      pph := r.plans_per_hour :: !pph;
      pf "%6d %10d %8d %10d %13.1f %12.0f %10.1f\n" seed r.admitted r.shed
        r.rolled_back
        (1000. *. r.queue_wait_p99_s)
        r.replica_lag_p99 r.plans_per_hour;
      rows :=
        Obs.Json.Obj
          [
            ("seed", Obs.Json.Int seed);
            ("admitted", Obs.Json.Int r.admitted);
            ("shed", Obs.Json.Int r.shed);
            ("rolled_back", Obs.Json.Int r.rolled_back);
            ("remediations", Obs.Json.Int r.remediations);
            ("queue_wait_p99_s", Obs.Json.Float r.queue_wait_p99_s);
            ("replica_lag_p99", Obs.Json.Float r.replica_lag_p99);
            ("replica_lag_peak", Obs.Json.Int r.replica_lag_peak);
            ("snapshot_ships", Obs.Json.Int r.snapshot_ships);
            ("plans_per_hour", Obs.Json.Float r.plans_per_hour);
            ( "unremediated_violations",
              Obs.Json.Int r.unremediated_violations );
          ]
        :: !rows)
    seeds;
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  pf "mean: queue wait p99 %.1f ms, replica lag p99 %.0f ops, %.1f plans/h\n"
    (1000. *. mean !waits) (mean !lags) (mean !pph);
  emit "rows" (Obs.Json.List (List.rev !rows));
  emit "queue_wait_p99_s_mean" (Obs.Json.Float (mean !waits));
  emit "replica_lag_p99_mean" (Obs.Json.Float (mean !lags));
  emit "plans_per_hour_mean" (Obs.Json.Float (mean !pph))

(* ------------------------------------------------------------------ *)
(* Symbolic phase verifier: full vs delta-net incremental verification *)

let analysis () =
  header "Phase verifier: full vs delta-net incremental verification"
    "untouched equivalence classes reuse the previous boundary's forwarding \
     graphs; incremental re-verification is measurably cheaper than full";
  let module PV = Analysis.Phase_verifier in
  let fab = Topology.Clos.fabric () in
  let tagged =
    Net.Attr.make
      ~communities:
        (Net.Community.Set.singleton
           Net.Community.Well_known.backbone_default_route)
      ()
  in
  (* One anycast default class plus [n_spec] specific classes, all
     originated at the EBs. *)
  let n_spec = 12 in
  let origins =
    List.map
      (fun eb ->
        {
          PV.org_device = eb;
          org_prefix = Net.Prefix.default_v4;
          org_attr = tagged;
        })
      fab.Topology.Clos.ebs
    @ List.init n_spec (fun j ->
          {
            PV.org_device =
              List.nth fab.Topology.Clos.ebs
                (j mod List.length fab.Topology.Clos.ebs);
            org_prefix = Net.Prefix.v4 10 j 0 0 16;
            org_attr = Net.Attr.make ();
          })
  in
  (* Each phase deploys RPAs that steer exactly one specific class: the
     delta-net set is 1 class of 13 per state. The steer pins FSW
     forwarding to upstream (SSW-learned) paths — the natural best paths,
     so the plan is clean and the bench measures verification, not
     violation reporting. *)
  let ssw_asns =
    List.map (fun d -> Net.Asn.of_int (64512 + d)) fab.Topology.Clos.ssws
  in
  let steer j =
    Centralium.Rpa.make
      ~path_selection:
        [
          Centralium.Path_selection.make
            [
              Centralium.Path_selection.statement
                ~name:(Printf.sprintf "steer-10-%d" j)
                ~path_sets:
                  [
                    Centralium.Path_selection.path_set ~name:"via-ssw"
                      (Centralium.Signature.make ~neighbor_asns:ssw_asns ());
                  ]
                (Centralium.Destination.Prefixes [ Net.Prefix.v4 10 j 0 0 16 ]);
            ];
        ]
      ()
  in
  let rec chunk n = function
    | [] -> []
    | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
          let a, b = take (k - 1) tl in
          (x :: a, b)
        | rest -> ([], rest)
      in
      let a, b = take n l in
      a :: chunk n b
  in
  let phases = chunk 4 fab.Topology.Clos.fsws in
  let rpas =
    List.concat
      (List.mapi (fun k ph -> List.map (fun d -> (d, steer k)) ph) phases)
  in
  let plan =
    {
      Centralium.Controller.plan_name = "bench-analysis";
      rpas;
      phases;
      pre_checks = [];
      post_checks = [];
    }
  in
  let iters = 5 in
  let measure ~incremental =
    let samples = ref [] in
    let last = ref None in
    for _ = 1 to iters do
      let t0 = Monotonic_clock.now () in
      let r = PV.verify ~origins ~incremental fab.Topology.Clos.graph plan in
      let ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e6 in
      samples := ms :: !samples;
      last := Some r
    done;
    (Option.get !last, Dsim.Stats.summarize !samples)
  in
  let full_r, full_s = measure ~incremental:false in
  let incr_r, incr_s = measure ~incremental:true in
  (* Same verdicts either way: reuse only skips provably untouched work. *)
  assert (full_r.PV.vr_violations = [] && incr_r.PV.vr_violations = []);
  assert (full_r.PV.vr_states = incr_r.PV.vr_states);
  let p50_speedup = full_s.Dsim.Stats.p50 /. incr_s.Dsim.Stats.p50 in
  let p99_speedup = full_s.Dsim.Stats.p99 /. incr_s.Dsim.Stats.p99 in
  pf "%d classes, %d states, %d devices\n" incr_r.PV.vr_classes
    incr_r.PV.vr_states
    (List.length (Topology.Graph.nodes fab.Topology.Clos.graph));
  pf "%-12s %10s %8s %12s %12s\n" "mode" "compiled" "reused" "verify p50"
    "verify p99";
  pf "%-12s %10d %8d %10.3fms %10.3fms\n" "full" full_r.PV.vr_compiled
    full_r.PV.vr_reused full_s.Dsim.Stats.p50 full_s.Dsim.Stats.p99;
  pf "%-12s %10d %8d %10.3fms %10.3fms\n" "incremental" incr_r.PV.vr_compiled
    incr_r.PV.vr_reused incr_s.Dsim.Stats.p50 incr_s.Dsim.Stats.p99;
  pf "compile ratio %.2fx; verify p50 %.2fx, p99 %.2fx faster\n"
    (float_of_int full_r.PV.vr_compiled /. float_of_int incr_r.PV.vr_compiled)
    p50_speedup p99_speedup;
  let mode_json r s =
    Obs.Json.Obj
      [
        ("compiled", Obs.Json.Int r.PV.vr_compiled);
        ("reused", Obs.Json.Int r.PV.vr_reused);
        ("verify_ms", summary_json s);
      ]
  in
  emit "classes" (Obs.Json.Int incr_r.PV.vr_classes);
  emit "states" (Obs.Json.Int incr_r.PV.vr_states);
  emit "iters" (Obs.Json.Int iters);
  emit "full" (mode_json full_r full_s);
  emit "incremental" (mode_json incr_r incr_s);
  emit "compile_ratio"
    (Obs.Json.Float
       (float_of_int full_r.PV.vr_compiled
       /. float_of_int incr_r.PV.vr_compiled));
  emit "verify_p50_speedup" (Obs.Json.Float p50_speedup);
  emit "verify_p99_speedup" (Obs.Json.Float p99_speedup)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig2", fig2);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("table2", table2);
    ("table3", table3);
    ("perf", perf);
    ("ablations", ablations);
    ("scale", scale);
    ("micro", micro);
    ("chaos", chaos);
    ("chaos_gr", chaos_gr);
    ("ha", ha);
    ("decision", decision);
    ("causal", causal);
    ("ops", ops);
    ("analysis", analysis);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ :: [] | [] -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> run_section name f
      | None ->
        pf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 1)
    requested;
  pf "\nAll sections completed.\n"
